"""Process-local engine metrics: counters, gauges and wall-clock timers.

The registry is **disabled by default** and the disabled path is engineered
to cost ~nothing: :func:`counter` / :func:`gauge` / :func:`timer` return
module-level *no-op singletons* (:data:`NULL_COUNTER`, :data:`NULL_GAUGE`,
:data:`NULL_TIMER`) whose mutators are empty methods, so instrumented hot
paths hold one shared object and every update is a single no-op call.  The
unit tests pin the singleton identity — ``counter("a") is counter("b") is
NULL_COUNTER`` while disabled — because that identity *is* the overhead
guarantee (no allocation, no dict lookup, no branching in the caller).

Enable with :func:`enable` (optionally passing your own
:class:`MetricsRegistry`), read everything back with :func:`snapshot`, and
restore the default with :func:`disable`.  Instrument sites that update in a
loop should fetch their handles once per run (the chase engine fetches per
``run()``), not per iteration — a live handle is a plain attribute-bumping
object, so the enabled path stays cheap too.

**Clock discipline.**  All timing in the library goes through :data:`CLOCK`
(``time.perf_counter``): the engine's stage timers, the tracer's span
timestamps (unless a test injects a fake clock) and the benchmark harnesses
(E16–E19 import :data:`CLOCK` and :func:`stopwatch` from here), so every
recorded duration is comparable.  Clocks never feed back into chase or
query decisions — telemetry observes, it does not steer — which is why
enabling metrics cannot perturb bit-identity.

**Memory.**  :func:`peak_rss_kb` reports the process's high-water resident
set (``resource.getrusage``; ``tracemalloc`` peak as the fallback where the
``resource`` module is unavailable), the ROADMAP item (o) companion to every
wall-time row in the perf trajectories.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Callable, Dict, Optional, Sequence, Tuple

#: The library-wide wall-clock source.  Monotonic, high-resolution, and the
#: single clock the engine, the tracer and the benchmark harnesses share.
CLOCK: Callable[[], float] = time.perf_counter


# ----------------------------------------------------------------------
# Live instruments
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written (or high-water) measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def max(self, value) -> None:
        """Keep the high-water mark of everything observed."""
        if value > self.value:
            self.value = value


class Timer:
    """Accumulated wall-clock time over any number of timed sections."""

    __slots__ = ("seconds", "count", "_clock")

    def __init__(self, clock: Callable[[], float] = CLOCK) -> None:
        self.seconds = 0.0
        self.count = 0
        self._clock = clock

    def add(self, seconds: float) -> None:
        """Record an externally measured duration."""
        self.seconds += seconds
        self.count += 1

    def time(self) -> "_TimerSection":
        """A context manager that times its body into this timer."""
        return _TimerSection(self)


class _TimerSection:
    __slots__ = ("_timer", "_started")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._started = 0.0

    def __enter__(self) -> "_TimerSection":
        self._started = self._timer._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.add(self._timer._clock() - self._started)


def log_buckets(lo: float, hi: float, factor: float = 2.0) -> Tuple[float, ...]:
    """Log-spaced bucket upper bounds: ``lo, lo*factor, ...`` up through *hi*."""
    if lo <= 0 or factor <= 1:
        raise ValueError(f"need lo > 0 and factor > 1, got {lo}, {factor}")
    bounds = []
    bound = lo
    while bound <= hi * (1 + 1e-12):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: Default latency buckets: 1 µs → ~67 s in powers of two (27 buckets).
LATENCY_BUCKETS = log_buckets(1e-6, 70.0, 2.0)

#: Default payload-size buckets: 64 B → ~64 MiB in powers of four.
SIZE_BUCKETS = log_buckets(64, 64 * 4 ** 10, 4.0)


class Histogram:
    """Fixed-bucket log-spaced histogram; the one **thread-safe** instrument.

    Counters and gauges stay single-threaded by design (the engine is
    single-threaded per run), but histograms exist for the *service* layer,
    where every request thread records its own latency — so ``observe`` and
    ``snapshot`` are serialised on an internal lock, and a snapshot is a
    consistent cut (``count == sum(bucket counts)`` always holds).

    Buckets are upper bounds with ``le`` semantics plus an implicit +Inf
    overflow bucket, matching Prometheus histogram exposition; bounds are
    fixed at construction (:data:`LATENCY_BUCKETS` by default) so two
    histograms with the same bounds can be merged bucket-wise.
    """

    __slots__ = ("bounds", "_counts", "count", "sum", "_lock")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else LATENCY_BUCKETS
        )
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self._counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += value

    def buckets(self) -> Tuple[Tuple[float, int], ...]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last — a
        consistent cut under the lock, cumulative like Prometheus ``le``."""
        with self._lock:
            counts = list(self._counts)
        out = []
        running = 0
        for bound, bucket in zip(self.bounds, counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return tuple(out)

    def quantile(self, q: float) -> float:
        """The *q*-quantile estimated from bucket bounds (0 when empty)."""
        return quantile_from_cumulative(self.buckets(), q)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready summary: count, sum and the headline percentiles."""
        with self._lock:
            count, total = self.count, self.sum
        return {
            "count": count,
            "sum": round(total, 9),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


def quantile_from_cumulative(
    buckets: Sequence[Tuple[float, int]], q: float
) -> float:
    """The *q*-quantile from cumulative ``(upper_bound, count)`` buckets.

    The Prometheus-style estimate: the upper bound of the first bucket whose
    cumulative count reaches rank ``q * total`` (the last finite bound for
    the +Inf bucket).  Shared by :meth:`Histogram.quantile` and ``repro
    top``, which recomputes quantiles from scraped exposition buckets.
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    last_finite = 0.0
    for bound, cumulative in buckets:
        if bound != float("inf"):
            last_finite = bound
        if cumulative >= rank:
            return last_finite
    return last_finite


# ----------------------------------------------------------------------
# Disabled instruments (shared no-op singletons)
# ----------------------------------------------------------------------
class _NullSection:
    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SECTION = _NullSection()


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0

    def set(self, value) -> None:
        pass

    def max(self, value) -> None:
        pass


class _NullTimer:
    __slots__ = ()
    seconds = 0.0
    count = 0

    def add(self, seconds: float) -> None:
        pass

    def time(self) -> _NullSection:
        return _NULL_SECTION


class _NullHistogram:
    __slots__ = ()
    bounds: Tuple[float, ...] = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def buckets(self) -> Tuple[Tuple[float, int], ...]:
        return ()

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        return {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


#: The handles every disabled lookup returns — one shared instance per kind,
#: so holding a handle across a chase run costs nothing when metrics are off.
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_TIMER = _NullTimer()
NULL_HISTOGRAM = _NullHistogram()


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A named collection of live instruments (one flat namespace).

    Names are dotted strings (``"engine.triggers_fired"``,
    ``"query.plan.hits"`` — see the README glossary); instruments are created
    on first lookup and accumulate until :meth:`reset` or the registry is
    dropped.  The registry is process-local and not thread-safe by design:
    the engine is single-threaded per run, and the parallel discovery
    workers report through the engine side, never directly.
    """

    __slots__ = ("counters", "gauges", "timers", "histograms", "clock")

    def __init__(self, clock: Callable[[], float] = CLOCK) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.timers: Dict[str, Timer] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.clock = clock

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self.timers.get(name)
        if instrument is None:
            instrument = self.timers[name] = Timer(self.clock)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The named histogram (created on first lookup, *bounds* fixed then).

        First-lookup creation races are tolerated via a setdefault: the
        service's request threads may look a histogram up concurrently, and
        every thread must end up bumping the same instrument.
        """
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms.setdefault(name, Histogram(bounds))
        return instrument

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()
        self.histograms.clear()

    def snapshot(self) -> Dict[str, object]:
        """A plain, JSON-ready dict of every instrument's current value."""
        out: Dict[str, object] = {}
        for name, counter in sorted(self.counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self.gauges.items()):
            out[name] = gauge.value
        for name, timer in sorted(self.timers.items()):
            out[name] = {"seconds": timer.seconds, "count": timer.count}
        for name, histogram in sorted(self.histograms.items()):
            out[name] = histogram.snapshot()
        return out


#: The active registry (``None`` = disabled, the default).
_ACTIVE: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Activate metrics collection; returns the now-active registry."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    """Deactivate metrics collection (lookups return the no-op singletons)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[MetricsRegistry]:
    """The active registry, or ``None`` when metrics are disabled.

    Instrument sites with per-iteration updates should call this once and
    fetch live handles only when it returns a registry.
    """
    return _ACTIVE


def counter(name: str):
    """The named counter of the active registry, or :data:`NULL_COUNTER`."""
    return _ACTIVE.counter(name) if _ACTIVE is not None else NULL_COUNTER


def gauge(name: str):
    """The named gauge of the active registry, or :data:`NULL_GAUGE`."""
    return _ACTIVE.gauge(name) if _ACTIVE is not None else NULL_GAUGE


def timer(name: str):
    """The named timer of the active registry, or :data:`NULL_TIMER`."""
    return _ACTIVE.timer(name) if _ACTIVE is not None else NULL_TIMER


def histogram(name: str, bounds: Optional[Sequence[float]] = None):
    """The named histogram of the active registry, or :data:`NULL_HISTOGRAM`."""
    return (
        _ACTIVE.histogram(name, bounds) if _ACTIVE is not None else NULL_HISTOGRAM
    )


def snapshot() -> Dict[str, object]:
    """The active registry's snapshot (empty dict when disabled)."""
    return _ACTIVE.snapshot() if _ACTIVE is not None else {}


# ----------------------------------------------------------------------
# Shared measurement helpers (benchmark harnesses)
# ----------------------------------------------------------------------
class Stopwatch:
    """One timed section on the shared :data:`CLOCK`; ``.seconds`` after exit."""

    __slots__ = ("seconds", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started = 0.0

    def __enter__(self) -> "Stopwatch":
        self._started = CLOCK()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = CLOCK() - self._started


def stopwatch() -> Stopwatch:
    """``with stopwatch() as sw: ...`` — the harnesses' one timing idiom."""
    return Stopwatch()


def peak_rss_kb() -> int:
    """Peak resident set size of this process, in kibibytes.

    Uses ``resource.getrusage`` where available (Linux reports ``ru_maxrss``
    in KiB; macOS in bytes, normalised here); falls back to the
    ``tracemalloc`` peak when the ``resource`` module is missing, and to 0
    when neither source exists — callers record the value, they never branch
    on it.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        import tracemalloc

        if tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[1] // 1024
        return 0
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform dependent
        return peak // 1024
    return peak
