"""CLI entry point: ``python -m repro.obs summarize trace.jsonl``.

Folds a JSON-lines trace file (written via
:func:`repro.obs.trace.enable_tracing`) into per-span totals and the
chase-level invariants, and prints the summary.  ``--json`` emits the raw
summary dict instead of the text rendering — the CI bench-smoke job uses it
to assert the trace's fired-trigger total against the chase report's.
"""

from __future__ import annotations

import argparse
import json
import sys

from .report import summarize_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro observability artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    summarize = commands.add_parser(
        "summarize", help="Summarize a JSON-lines trace file."
    )
    summarize.add_argument(
        "trace", help="Path to the trace .jsonl file, or '-' for stdin."
    )
    summarize.add_argument(
        "--trace-id",
        default=None,
        help="Only count lines stamped with this request trace id "
        "(carves one request's span tree out of a service trace ring).",
    )
    summarize.add_argument(
        "--json",
        action="store_true",
        help="Emit the summary as JSON instead of text.",
    )
    args = parser.parse_args(argv)

    source = sys.stdin if args.trace == "-" else args.trace
    summary = summarize_trace(source, trace_id=args.trace_id)
    if args.json:
        print(
            json.dumps(
                {
                    "lines": summary.lines,
                    "malformed": summary.malformed,
                    "spans": {
                        name: {"count": int(count), "seconds": total}
                        for name, (count, total) in sorted(summary.spans.items())
                    },
                    "events": dict(sorted(summary.events.items())),
                    "stages": summary.stages,
                    "candidates": summary.candidates,
                    "fired": summary.fired,
                    "new_atoms": summary.new_atoms,
                    "nulls_created": summary.nulls_created,
                    "wire_bytes": summary.wire_bytes,
                    "faults": summary.faults,
                }
            )
        )
    else:
        print(summary.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
