"""Reporting: chase run statistics, query EXPLAIN, and trace summarisation.

Three consumers of the raw telemetry:

* :class:`ChaseRunStats` — the accounting record the semi-naive engine
  attaches to every :class:`~repro.chase.chase.ChaseResult` (``result.stats``):
  one :class:`StageStats` per stage (delta-window size, candidates
  discovered vs triggers fired, atoms and nulls created, discovery /
  dedup+merge / firing wall time) plus run-level cache and interner
  accounting.  :meth:`ChaseRunStats.render` prints the per-stage table.
* :func:`explain` — compiles a query against a structure exactly as
  evaluation would and renders the plan: join order, per-step stamp windows
  and posting sizes, the executor ``strategy="auto"`` would dispatch to and
  *why* (cyclicity, thresholds), the WCOJ variable order where relevant, and
  the index's plan-cache hit ratios.
* :func:`summarize_trace` / :class:`TraceSummary` — folds a JSON-lines
  trace file (:mod:`repro.obs.trace`) into per-name span/event totals and
  the chase-level invariants (stages, candidates, fired triggers), exposed
  on the CLI as ``python -m repro.obs summarize trace.jsonl``.  CI asserts
  the summariser's fired-trigger total equals both ``result.stats``'s and
  the provenance record's — the three accountings must never drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# ----------------------------------------------------------------------
# Chase run statistics
# ----------------------------------------------------------------------
@dataclass
class StageStats:
    """Accounting of one semi-naive chase stage."""

    stage: int
    #: Size of the delta window the stage's discovery ranged over (number of
    #: atoms stamped in ``[delta_lo, stage_start)``).
    delta_window: int
    #: Candidate matches enumerated by batch discovery (pre-dedup).
    candidates: int = 0
    #: Candidates surviving the per-TGD dedup (what the firing pass saw).
    deduped: int = 0
    #: Triggers that actually fired (created at least one atom).
    fired: int = 0
    new_atoms: int = 0
    nulls_created: int = 0
    discovery_seconds: float = 0.0
    dedup_seconds: float = 0.0
    fire_seconds: float = 0.0


@dataclass
class ChaseRunStats:
    """Run-level accounting attached to ``ChaseResult.stats``.

    Totals are sums over :attr:`stages`; the trailing snapshot fields are
    read once at the end of the run from the engine's index (plan cache,
    trie cache, interner, watermark), so they reflect the whole run
    including post-discovery firing.
    """

    engine: str = "seminaive"
    strategy: str = "lazy"
    match_strategy: str = "nested"
    workers: int = 0
    stages: List[StageStats] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: ``PlanCache`` counters of the run's index: hits / stale_hits (plan
    #: revalidated after bounded growth) / misses (compiled) / invalidations.
    plan_cache: Dict[str, int] = field(default_factory=dict)
    #: ``TrieCache`` counters (WCOJ runs only): builds / extensions / hits /
    #: invalidations.
    trie_cache: Dict[str, int] = field(default_factory=dict)
    #: Interner growth over the run: terms / predicates at the end.
    interner: Dict[str, int] = field(default_factory=dict)
    #: Index shape at the end: watermark (atoms stamped) / rebuilds.
    index: Dict[str, int] = field(default_factory=dict)
    #: Fault-tolerance ledger of the run's supervised parallel discovery
    #: (:mod:`repro.engine.resilience`): injected / detected / retried /
    #: degraded.  Empty for serial or strict (unsupervised) runs.  CI asserts
    #: these equal the trace summariser's ``parallel.fault.*`` event counts —
    #: the two accountings must never drift.
    faults: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def stages_run(self) -> int:
        return len(self.stages)

    @property
    def candidates(self) -> int:
        return sum(stage.candidates for stage in self.stages)

    @property
    def deduped(self) -> int:
        return sum(stage.deduped for stage in self.stages)

    @property
    def fired(self) -> int:
        return sum(stage.fired for stage in self.stages)

    @property
    def new_atoms(self) -> int:
        return sum(stage.new_atoms for stage in self.stages)

    @property
    def nulls_created(self) -> int:
        return sum(stage.nulls_created for stage in self.stages)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready flattening (benchmark rows, service responses)."""
        return {
            "engine": self.engine,
            "strategy": self.strategy,
            "match_strategy": self.match_strategy,
            "workers": self.workers,
            "stages_run": self.stages_run,
            "candidates": self.candidates,
            "deduped": self.deduped,
            "fired": self.fired,
            "new_atoms": self.new_atoms,
            "nulls_created": self.nulls_created,
            "wall_seconds": round(self.wall_seconds, 6),
            "plan_cache": dict(self.plan_cache),
            "trie_cache": dict(self.trie_cache),
            "interner": dict(self.interner),
            "index": dict(self.index),
            "faults": dict(self.faults),
            "per_stage": [
                {
                    "stage": s.stage,
                    "delta_window": s.delta_window,
                    "candidates": s.candidates,
                    "deduped": s.deduped,
                    "fired": s.fired,
                    "new_atoms": s.new_atoms,
                    "nulls_created": s.nulls_created,
                    "discovery_seconds": round(s.discovery_seconds, 6),
                    "dedup_seconds": round(s.dedup_seconds, 6),
                    "fire_seconds": round(s.fire_seconds, 6),
                }
                for s in self.stages
            ],
        }

    def render(self) -> str:
        """The per-stage table plus the run-level cache/interner summary."""
        header = (
            f"chase run: engine={self.engine} strategy={self.strategy} "
            f"match={self.match_strategy} workers={self.workers} "
            f"wall={self.wall_seconds:.4f}s"
        )
        columns = (
            "stage", "delta", "cand", "dedup", "fired", "atoms", "nulls",
            "disc(s)", "merge(s)", "fire(s)",
        )
        rows = [columns]
        for s in self.stages:
            rows.append((
                str(s.stage), str(s.delta_window), str(s.candidates),
                str(s.deduped), str(s.fired), str(s.new_atoms),
                str(s.nulls_created), f"{s.discovery_seconds:.4f}",
                f"{s.dedup_seconds:.4f}", f"{s.fire_seconds:.4f}",
            ))
        rows.append((
            "total", "-", str(self.candidates), str(self.deduped),
            str(self.fired), str(self.new_atoms), str(self.nulls_created),
            f"{sum(s.discovery_seconds for s in self.stages):.4f}",
            f"{sum(s.dedup_seconds for s in self.stages):.4f}",
            f"{sum(s.fire_seconds for s in self.stages):.4f}",
        ))
        widths = [max(len(row[i]) for row in rows) for i in range(len(columns))]
        lines = [header]
        for number, row in enumerate(rows):
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
            if number == 0:
                lines.append("  ".join("-" * width for width in widths))
        plan = self.plan_cache
        if plan:
            lookups = (
                plan.get("hits", 0) + plan.get("stale_hits", 0) + plan.get("misses", 0)
            )
            ratio = (plan.get("hits", 0) + plan.get("stale_hits", 0)) / max(lookups, 1)
            lines.append(
                f"plan cache: {plan.get('hits', 0)} hits, "
                f"{plan.get('stale_hits', 0)} revalidated, "
                f"{plan.get('misses', 0)} compiled, "
                f"{plan.get('invalidations', 0)} invalidations "
                f"(hit ratio {ratio:.2%})"
            )
        trie = self.trie_cache
        if trie:
            lines.append(
                f"trie cache: {trie.get('builds', 0)} builds, "
                f"{trie.get('extensions', 0)} extensions, "
                f"{trie.get('hits', 0)} hits, "
                f"{trie.get('invalidations', 0)} invalidations"
            )
        if self.interner:
            lines.append(
                f"interner: {self.interner.get('terms', 0)} terms, "
                f"{self.interner.get('predicates', 0)} predicates"
            )
        if self.index:
            lines.append(
                f"index: watermark {self.index.get('watermark', 0)}, "
                f"{self.index.get('rebuilds', 0)} rebuilds"
            )
        if any(self.faults.values()):
            lines.append(_render_fault_ledger(self.faults))
        return "\n".join(lines)


def _render_fault_ledger(faults: Dict[str, int]) -> str:
    """The one-line supervision ledger shared by stats and trace renders."""
    return (
        f"parallel faults: {faults.get('injected', 0)} injected, "
        f"{faults.get('detected', 0)} detected, "
        f"{faults.get('retried', 0)} retried, "
        f"{faults.get('degraded', 0)} degraded"
    )


# ----------------------------------------------------------------------
# EXPLAIN
# ----------------------------------------------------------------------
_WINDOW_NAMES = {0: "all", 1: "pre-delta", 2: "seed", 3: "stage"}


def _query_atoms(query) -> Tuple[object, ...]:
    """The body atoms of *query*: a sequence of atoms, a CQ, or a TGD."""
    if hasattr(query, "atoms"):
        return tuple(query.atoms)
    if hasattr(query, "body"):
        return tuple(query.body)
    return tuple(query)


def explain(structure, query, context=None, strategy: Optional[str] = None) -> str:
    """Render how the compiled runtime would evaluate *query* on *structure*.

    Compiles (or fetches the cached plan of) the query body against the
    structure's shared index — exactly the lookup an evaluation performs, so
    the output reflects the true cached plan — and explains the join order,
    the per-step posting statistics and the executor choice with its
    rationale.  *strategy* defaults to the context's ``default_strategy``.
    """
    from ..query.compile import (
        HASH_SCAN_THRESHOLD,
        WCOJ_AUTO_THRESHOLD,
        compiled_for,
        plan_cache_for,
    )
    from ..query.context import get_context
    from ..query.wcoj import build_wcoj_plan

    context = get_context(context)
    if strategy is None:
        strategy = context.default_strategy
    atoms = _query_atoms(query)
    index = context.index_for(structure)
    compiled = compiled_for(index, atoms, frozenset(), context=context)

    if strategy == "wcoj" or (strategy == "auto" and compiled.wcoj_recommended):
        chosen = "wcoj"
    elif strategy == "hash" or (strategy == "auto" and compiled.hash_recommended):
        chosen = "hash"
    elif strategy == "auto":
        chosen = "nested"
    else:
        chosen = strategy

    lines = [
        f"query: {len(atoms)} atoms over "
        f"{len(structure)} atoms / watermark {index.watermark()}",
        f"strategy: {strategy} -> executor: {chosen}",
    ]
    # Rationale: the exact predicates execute() consults, spelled out.
    largest = max((step.planned_count for step in compiled.steps), default=0)
    if compiled.cyclic:
        lines.append(
            "  body is cyclic (variable-atom incidence graph has a cycle): "
            "binary join orders can exceed the AGM bound"
        )
        if compiled.wcoj_recommended:
            lines.append(
                f"  largest posting list {largest} >= wcoj threshold "
                f"{WCOJ_AUTO_THRESHOLD}: auto upgrades to the generic join"
            )
        else:
            lines.append(
                f"  largest posting list {largest} < wcoj threshold "
                f"{WCOJ_AUTO_THRESHOLD}: trie build would cost more than any "
                "binary-join blowup"
            )
    else:
        lines.append("  body is acyclic: nested/hash binary joins are safe")
    if compiled.hash_recommended and not compiled.cyclic:
        lines.append(
            f"  opening scan >= {HASH_SCAN_THRESHOLD} rows with no bound "
            "positions: auto prefers the build-probe hash join"
        )
    lines.append("plan (most-constrained-first join order):")
    for number, step in enumerate(compiled.steps):
        window = _WINDOW_NAMES.get(step.window, str(step.window))
        posting = index.posting(step.pred_id)
        current = 0 if posting is None else posting.length
        lines.append(
            f"  {number}. {step.atom!r}  window={window}  "
            f"rows={current} (planned {step.planned_count})  "
            f"binds={len(step.binds)} joins={len(step.joins)} "
            f"consts={len(step.consts)}"
        )
    if chosen == "wcoj":
        plan = compiled._wcoj_plan
        if plan is None:
            plan = compiled._wcoj_plan = build_wcoj_plan(compiled)
        term_of_slot = {slot: term for term, slot in compiled.outputs}
        term_of_slot.update({slot: term for term, slot in compiled.prebound})
        parts = []
        for slot, prebound, participants in plan.levels:
            label = str(term_of_slot.get(slot, f"slot{slot}"))
            if prebound:
                label += "*"
            parts.append(f"{label}({len(participants)})")
        lines.append(
            "wcoj variable order (*=pre-bound, (n)=atoms intersected): "
            + " -> ".join(parts)
        )
    cache = plan_cache_for(index)
    lookups = cache.hits + cache.stale_hits + cache.misses
    ratio = (cache.hits + cache.stale_hits) / max(lookups, 1)
    lines.append(
        f"plan cache: {cache.hits} hits, {cache.stale_hits} revalidated, "
        f"{cache.misses} compiled, {cache.invalidations} invalidations "
        f"(hit ratio {ratio:.2%}, {len(cache.entries)} entries)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace summarisation
# ----------------------------------------------------------------------
@dataclass
class TraceSummary:
    """Aggregated view of one JSON-lines trace file."""

    #: Per span name: ``[count, total duration]``.
    spans: Dict[str, List[float]] = field(default_factory=dict)
    #: Per instant-event name: count.
    events: Dict[str, int] = field(default_factory=dict)
    lines: int = 0
    malformed: int = 0
    #: Chase-level totals folded from ``chase.stage`` end lines.
    stages: int = 0
    candidates: int = 0
    fired: int = 0
    new_atoms: int = 0
    nulls_created: int = 0
    #: Bytes shipped to parallel workers (sum over ``parallel.worker`` events).
    #: Under the shared-memory transport this is control-message bytes only —
    #: compare with :attr:`shm_attached_bytes` to see the saving.
    wire_bytes: int = 0
    #: Posting-column bytes workers read in place via shared-memory segments
    #: (sum over ``parallel.shm.attach`` events; never crossed a pipe).
    shm_attached_bytes: int = 0
    #: Segment bytes allocated by grow-by-doubling (``parallel.shm.grow``).
    shm_grown_bytes: int = 0
    #: Supervision ledger folded from fault-tolerance events:
    #: ``parallel.fault.injected`` → injected, every other
    #: ``parallel.fault.*`` → detected, ``parallel.retry`` → retried,
    #: ``parallel.degrade`` → degraded.  Must reconcile exactly with
    #: ``ChaseRunStats.faults`` of the traced run.
    faults_injected: int = 0
    faults_detected: int = 0
    faults_retried: int = 0
    faults_degraded: int = 0

    @property
    def faults(self) -> Dict[str, int]:
        """The ledger in ``ChaseRunStats.faults`` shape, for reconciliation."""
        return {
            "injected": self.faults_injected,
            "detected": self.faults_detected,
            "retried": self.faults_retried,
            "degraded": self.faults_degraded,
        }

    def render(self) -> str:
        lines = [
            f"trace: {self.lines} lines"
            + (f" ({self.malformed} malformed)" if self.malformed else "")
        ]
        if self.spans:
            lines.append("spans (count, total seconds):")
            width = max(len(name) for name in self.spans)
            for name in sorted(self.spans):
                count, total = self.spans[name]
                lines.append(f"  {name.ljust(width)}  {int(count):6d}  {total:.4f}s")
        if self.events:
            lines.append("events:")
            width = max(len(name) for name in self.events)
            for name in sorted(self.events):
                lines.append(f"  {name.ljust(width)}  {self.events[name]:6d}")
        if self.stages:
            lines.append(
                f"chase: {self.stages} stages, {self.candidates} candidates, "
                f"{self.fired} fired, {self.new_atoms} atoms, "
                f"{self.nulls_created} nulls"
            )
        if self.wire_bytes:
            lines.append(f"parallel: {self.wire_bytes} wire bytes shipped")
        if self.shm_attached_bytes or self.shm_grown_bytes:
            lines.append(
                f"parallel shm: {self.shm_attached_bytes} bytes attached "
                f"in place, {self.shm_grown_bytes} bytes allocated"
            )
        if any(self.faults.values()):
            lines.append(_render_fault_ledger(self.faults))
        return "\n".join(lines)


def summarize_trace(source, trace_id: Optional[str] = None) -> TraceSummary:
    """Fold a trace (file path or iterable of JSON lines) into totals.

    With *trace_id*, only lines stamped ``"trace": trace_id`` contribute to
    the span/event/chase totals — the way to carve one request's span tree
    out of a service trace ring (``repro.obs summarize - --trace-id …``).
    Every line still counts toward :attr:`TraceSummary.lines`.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return _summarize_lines(handle, TraceSummary(), trace_id)
    return _summarize_lines(source, TraceSummary(), trace_id)


def _summarize_lines(
    lines: Iterable[str],
    summary: TraceSummary,
    trace_id: Optional[str] = None,
) -> TraceSummary:
    for raw in lines:
        raw = raw.strip()
        if not raw:
            continue
        summary.lines += 1
        try:
            line = json.loads(raw)
            kind = line["type"]
            name = line["name"]
        except (ValueError, KeyError, TypeError):
            summary.malformed += 1
            continue
        if trace_id is not None and line.get("trace") != trace_id:
            continue
        if kind == "E":
            entry = summary.spans.setdefault(name, [0, 0.0])
            entry[0] += 1
            entry[1] += line.get("dur", 0.0)
            if name == "chase.stage":
                summary.stages += 1
                summary.candidates += line.get("candidates", 0)
                summary.fired += line.get("fired", 0)
                summary.new_atoms += line.get("new_atoms", 0)
                summary.nulls_created += line.get("nulls_created", 0)
        elif kind == "I":
            summary.events[name] = summary.events.get(name, 0) + 1
            if name == "parallel.worker":
                summary.wire_bytes += line.get("wire_bytes", 0)
            elif name == "parallel.shm.attach":
                summary.shm_attached_bytes += line.get("bytes", 0)
            elif name == "parallel.shm.grow":
                summary.shm_grown_bytes += line.get("bytes", 0)
            elif name == "parallel.fault.injected":
                summary.faults_injected += 1
            elif name.startswith("parallel.fault."):
                summary.faults_detected += 1
            elif name == "parallel.retry":
                summary.faults_retried += 1
            elif name == "parallel.degrade":
                summary.faults_degraded += 1
        # "B" lines only open spans; the matching "E" carries the totals.
    return summary
