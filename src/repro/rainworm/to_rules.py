"""From rainworm instructions to green graph rewriting rules (Section VIII.C).

For a rainworm machine ``∆`` the rule set ``T_M`` contains

* ``∅ &·· ∅ ] α &·· η11`` and ``η11 /·· ∅ ] γ1 /·· η0``;
* ``η0 &·· ∅ ] b &·· η1`` for every instruction ``η0 ⇒ b η1`` (♦2);
* ``η1 /·· ∅ ] q /·· ω0`` for every instruction ``η1 ⇒ q ω0`` (♦3);
* ``x /·· t ] x′ /·· t′`` for every instruction ``x t ⇒ x′ t′`` of one of the
  forms ♦4, ♦5, ♦6, ♦7, ♦8;
* ``x &·· t ] x′ &·· t′`` for every instruction of one of the forms
  ♦4′, ♦5′, ♦6′, ♦7′.

The labels of the resulting green graph rules are exactly the rainworm
symbols (with their Definition 19 parity), so the slime trail of the worm
becomes an αβ-path that the grid rule set ``T□`` can measure.  The complete
rule set of the Theorem 5 reduction is ``T_M ∪ T□`` (Lemma 24).
"""

from __future__ import annotations

from typing import List

from ..greengraph.labels import EMPTY, Label
from ..greengraph.rules import GreenGraphRule, GreenGraphRuleSet, and_rule, div_rule
from ..separating.grid_rules import grid_rules
from .machine import Instruction, InstructionForm, RainwormMachine

#: Instruction forms translated into ``/··`` rules (shared source).
_DIV_FORMS = frozenset(
    {
        InstructionForm.D4,
        InstructionForm.D5,
        InstructionForm.D6,
        InstructionForm.D7,
        InstructionForm.D8,
    }
)

#: Instruction forms translated into ``&··`` rules (shared target).
_AND_FORMS = frozenset(
    {
        InstructionForm.D4P,
        InstructionForm.D5P,
        InstructionForm.D6P,
        InstructionForm.D7P,
    }
)


def _label(symbol) -> Label:
    return symbol.label()


def _base_rules(machine: RainwormMachine) -> List[GreenGraphRule]:
    """The two fixed rules plus the ♦1 bookkeeping."""
    from .machine import ALPHA, ETA0, ETA11, GAMMA1

    return [
        and_rule(EMPTY, EMPTY, _label(ALPHA), _label(ETA11), name=f"{machine.name}::start"),
        div_rule(
            _label(ETA11), EMPTY, _label(GAMMA1), _label(ETA0), name=f"{machine.name}::♦1"
        ),
    ]


def rule_for_instruction(
    machine: RainwormMachine, instruction: Instruction
) -> GreenGraphRule:
    """The single green graph rule encoding one rainworm instruction."""
    name = f"{machine.name}::{instruction!r}"
    if instruction.form is InstructionForm.D1:
        raise ValueError("♦1 is covered by the two fixed rules of T_M")
    if instruction.form is InstructionForm.D2:
        (eta0,) = instruction.lhs
        cell, eta1 = instruction.rhs
        return and_rule(_label(eta0), EMPTY, _label(cell), _label(eta1), name=name)
    if instruction.form is InstructionForm.D3:
        (eta1,) = instruction.lhs
        head, omega = instruction.rhs
        return div_rule(_label(eta1), EMPTY, _label(head), _label(omega), name=name)
    first, second = instruction.lhs
    third, fourth = instruction.rhs
    if instruction.form in _DIV_FORMS:
        return div_rule(
            _label(first), _label(second), _label(third), _label(fourth), name=name
        )
    if instruction.form in _AND_FORMS:
        return and_rule(
            _label(first), _label(second), _label(third), _label(fourth), name=name
        )
    raise ValueError(f"unhandled instruction form {instruction.form}")  # pragma: no cover


def machine_rules(machine: RainwormMachine) -> GreenGraphRuleSet:
    """``T_M`` (without the grid part) for a rainworm machine."""
    rules: List[GreenGraphRule] = _base_rules(machine)
    for instruction in machine.instructions:
        if instruction.form is InstructionForm.D1:
            continue
        rules.append(rule_for_instruction(machine, instruction))
    return GreenGraphRuleSet(rules, name=f"T_M({machine.name})")


def reduction_rules(machine: RainwormMachine) -> GreenGraphRuleSet:
    """``T_M ∪ T□``: the full rule set of the Theorem 5 reduction (Lemma 24)."""
    return GreenGraphRuleSet(
        list(machine_rules(machine).rules) + list(grid_rules().rules),
        name=f"T_M({machine.name})∪T□",
    )
