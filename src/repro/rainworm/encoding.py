"""Compiling Turing machines into rainworm machines (the source of Lemma 21).

The paper's Lemma 21 — "whether the rainworm creeps forever is undecidable"
— is justified by "textbook techniques".  This module makes the reduction
concrete: given a deterministic Turing machine ``M`` (one-way infinite tape,
never moving left from cell 0), it produces a rainworm machine ``∆(M)`` such
that

    ∆(M) creeps forever   ⇔   M does not halt (started on a blank tape).

**How the simulation works.**  The worm body between the ``γ`` marker and
the ``ω0`` end stores the TM configuration, one logical symbol per cell;
one logical symbol is the *head marker* ``(state, symbol)``.  Every creep
cycle of the rainworm:

* ♦2 appends a *virgin blank* ``V`` at the front (the tape grows by one);
* the left sweep (♦4/♦4′) copies every cell unchanged (it only flips the
  parity variant, as the rule format forces);
* ♦5/♦5′ move the rear marker and ♦6/♦6′ consume the rearmost cell, loading
  it into the right-sweep state;
* the right sweep (♦7/♦7′) is a one-cell *delay line*: it re-emits the
  consumed cell first and each read cell one position later, so the encoded
  configuration stays anchored at the rear even though the worm loses one
  cell there per cycle;
* while passing the head marker the delay line applies exactly one TM step
  (rewriting the marked cell and moving the marker one cell left or right);
* ♦8 flushes the delay line into the cell it appends.

A missing TM transition translates into a missing ♦6/♦7 instruction, so the
worm halts exactly when the TM does.  The compiler below is exercised by the
test suite on halting and non-halting Turing machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from .machine import (
    BETA0,
    BETA1,
    ETA0,
    ETA1,
    ETA11,
    GAMMA0,
    GAMMA1,
    OMEGA0,
    Instruction,
    InstructionForm,
    RWSymbol,
    RainwormMachine,
    SymbolKind,
    state,
    tape0,
    tape1,
)
from .turing import Move, TuringMachine

#: The virgin blank appended by ♦2 every cycle (read as a blank by the TM).
VIRGIN = "V"


@dataclass(frozen=True)
class Marker:
    """The logical symbol carrying the TM head: ``(state, tape symbol)``."""

    state: str
    symbol: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.state}|{self.symbol}]"


LogicalSymbol = Union[str, Marker]
"""A logical worm cell: a TM tape symbol, the virgin blank, or a head marker."""


@dataclass(frozen=True)
class SweepState:
    """The right-sweep state: the delayed cell plus the marker-pending mode."""

    buffer: LogicalSymbol
    mark_with: Optional[str] = None  # a TM state when the *next* cell gets the head


def _logical_name(value: LogicalSymbol) -> str:
    if isinstance(value, Marker):
        return f"m({value.state};{value.symbol})"
    return f"t({value})"


def _tape_value(value: LogicalSymbol, blank: str) -> str:
    """The TM tape symbol a logical cell represents (markers keep their symbol)."""
    if isinstance(value, Marker):
        return value.symbol
    if value == VIRGIN:
        return blank
    return value


class TMEncodingError(ValueError):
    """Raised when the Turing machine violates the required normal form."""


class _Encoder:
    """Stateful helper that assembles the instruction set ``∆(M)``."""

    def __init__(self, machine: TuringMachine) -> None:
        self.machine = machine
        self.logical: List[LogicalSymbol] = self._logical_alphabet()
        self.cell0: Dict[LogicalSymbol, RWSymbol] = {
            value: tape0(f"{_logical_name(value)}·0") for value in self.logical
        }
        self.cell1: Dict[LogicalSymbol, RWSymbol] = {
            value: tape1(f"{_logical_name(value)}·1") for value in self.logical
        }
        self.left0 = state("L0", SymbolKind.STATE_LEFT_0)
        self.left1 = state("L1", SymbolKind.STATE_LEFT_1)
        self.gamma0 = state("G0", SymbolKind.STATE_GAMMA_0)
        self.gamma1 = state("G1", SymbolKind.STATE_GAMMA_1)
        self._sweep_states: List[SweepState] = self._sweep_state_space()
        self.right0: Dict[SweepState, RWSymbol] = {
            s: state(f"R0⟨{self._sweep_name(s)}⟩", SymbolKind.STATE_RIGHT_0)
            for s in self._sweep_states
        }
        self.right1: Dict[SweepState, RWSymbol] = {
            s: state(f"R1⟨{self._sweep_name(s)}⟩", SymbolKind.STATE_RIGHT_1)
            for s in self._sweep_states
        }

    # ------------------------------------------------------------------
    def _logical_alphabet(self) -> List[LogicalSymbol]:
        symbols: List[LogicalSymbol] = [VIRGIN]
        symbols.extend(sorted(self.machine.tape_alphabet()))
        for tm_state in sorted(self.machine.states()):
            for symbol in sorted(self.machine.tape_alphabet()):
                symbols.append(Marker(tm_state, symbol))
        return symbols

    def _sweep_state_space(self) -> List[SweepState]:
        states: List[SweepState] = []
        marks: List[Optional[str]] = [None] + sorted(self.machine.states())
        for buffer in self.logical:
            for mark in marks:
                states.append(SweepState(buffer, mark))
        return states

    @staticmethod
    def _sweep_name(sweep: SweepState) -> str:
        mark = sweep.mark_with or "·"
        return f"{_logical_name(sweep.buffer)},{mark}"

    # ------------------------------------------------------------------
    # The logical transducer (one TM step per cycle)
    # ------------------------------------------------------------------
    def initial_sweep_state(self, consumed: LogicalSymbol) -> Optional[SweepState]:
        """The right-sweep state chosen by ♦6/♦6′ after consuming *consumed*.

        ``None`` means "no instruction": the rainworm halts, which happens
        exactly when the consumed cell carries a halted TM head.
        """
        if consumed == VIRGIN:
            # The very first cycle: seed the TM's initial head on a blank.
            return SweepState(Marker(self.machine.initial_state, self.machine.blank))
        if isinstance(consumed, Marker):
            rule = self.machine.transition(consumed.state, consumed.symbol)
            if rule is None:
                return None
            if rule.move is Move.LEFT:
                # The head sits on the leftmost cell; a left move falls off
                # the tape.  Machines in the required normal form never do
                # this, so the missing instruction is unreachable.
                return None
            return SweepState(rule.write, rule.next_state)
        return SweepState(consumed)

    def read_cell(
        self, sweep: SweepState, value: LogicalSymbol
    ) -> Optional[Tuple[LogicalSymbol, SweepState]]:
        """One delay-line step: output a cell and move to the next sweep state."""
        if sweep.mark_with is not None:
            marked = Marker(sweep.mark_with, _tape_value(value, self.machine.blank))
            return sweep.buffer, SweepState(marked)
        if isinstance(value, Marker):
            rule = self.machine.transition(value.state, value.symbol)
            if rule is None:
                return None
            if rule.move is Move.RIGHT:
                return sweep.buffer, SweepState(rule.write, rule.next_state)
            # Left move: the head lands on the cell currently held in the buffer.
            marked_buffer = Marker(
                rule.next_state, _tape_value(sweep.buffer, self.machine.blank)
            )
            return marked_buffer, SweepState(rule.write)
        return sweep.buffer, SweepState(value)

    def flush(self, sweep: SweepState) -> Optional[LogicalSymbol]:
        """The cell appended by ♦8 (undefined when a marker placement is pending)."""
        if sweep.mark_with is not None:
            return None
        return sweep.buffer

    # ------------------------------------------------------------------
    # Instruction assembly
    # ------------------------------------------------------------------
    def instructions(self) -> List[Instruction]:
        result: List[Instruction] = [
            Instruction(InstructionForm.D1, (ETA11,), (GAMMA1, ETA0)),
            Instruction(InstructionForm.D2, (ETA0,), (self.cell0[VIRGIN], ETA1)),
            Instruction(InstructionForm.D3, (ETA1,), (self.left1, OMEGA0)),
            Instruction(InstructionForm.D5, (GAMMA1, self.left0), (BETA1, self.gamma0)),
            Instruction(InstructionForm.D5P, (GAMMA0, self.left1), (BETA0, self.gamma1)),
        ]
        # Identity left sweep (♦4 / ♦4′) for every logical cell.
        for value in self.logical:
            result.append(
                Instruction(
                    InstructionForm.D4,
                    (self.cell1[value], self.left0),
                    (self.left1, self.cell0[value]),
                )
            )
            result.append(
                Instruction(
                    InstructionForm.D4P,
                    (self.cell0[value], self.left1),
                    (self.left0, self.cell1[value]),
                )
            )
        # Rear consumption (♦6 / ♦6′).
        for value in self.logical:
            initial = self.initial_sweep_state(value)
            if initial is None:
                continue
            result.append(
                Instruction(
                    InstructionForm.D6,
                    (self.gamma1, self.cell0[value]),
                    (GAMMA1, self.right0[initial]),
                )
            )
            result.append(
                Instruction(
                    InstructionForm.D6P,
                    (self.gamma0, self.cell1[value]),
                    (GAMMA0, self.right1[initial]),
                )
            )
        # The right sweep (♦7 / ♦7′).
        for sweep in self._sweep_states:
            for value in self.logical:
                outcome = self.read_cell(sweep, value)
                if outcome is None:
                    continue
                output, successor = outcome
                result.append(
                    Instruction(
                        InstructionForm.D7,
                        (self.right1[sweep], self.cell0[value]),
                        (self.cell1[output], self.right0[successor]),
                    )
                )
                result.append(
                    Instruction(
                        InstructionForm.D7P,
                        (self.right0[sweep], self.cell1[value]),
                        (self.cell0[output], self.right1[successor]),
                    )
                )
        # Flushing the delay line (♦8).
        for sweep in self._sweep_states:
            flushed = self.flush(sweep)
            if flushed is None:
                continue
            result.append(
                Instruction(
                    InstructionForm.D8,
                    (self.right1[sweep], OMEGA0),
                    (self.cell1[flushed], ETA0),
                )
            )
        return result


def rainworm_from_turing(
    machine: TuringMachine, name: str = ""
) -> RainwormMachine:
    """Compile a Turing machine into a rainworm machine (see the module docstring)."""
    encoder = _Encoder(machine)
    return RainwormMachine(name or f"rainworm({machine.name})", encoder.instructions())


def encoding_statistics(machine: TuringMachine) -> Dict[str, int]:
    """Size statistics of the compiled rainworm (used by the benchmarks)."""
    compiled = rainworm_from_turing(machine)
    return {
        "tm_states": len(machine.states()),
        "tm_symbols": len(machine.tape_alphabet()),
        "rainworm_instructions": compiled.instruction_count(),
        "rainworm_symbols": len(compiled.symbols()),
    }
