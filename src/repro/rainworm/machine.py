"""Rainworm machines (Section VIII.A).

A rainworm machine (RM) is a variant of an oblivious Turing machine whose
"head" sits *between* two consecutive cells.  It is described by

* a finite set of states ``Q``, the disjoint union of six classes
  ``Q⃗0, Q⃗1`` (right-moving, even/odd), ``Q⃖0, Q⃖1`` (left-moving) and
  ``Qγ0, Qγ1``, plus the three special symbols ``η11, η0, η1``;
* a finite tape alphabet ``A``, the disjoint union of ``A0`` (even cells),
  ``A1`` (odd cells) and the special symbols ``α, β0, β1, γ0, γ1, ω0``;
* a set ``∆`` of instructions, each of one of the twelve forms ♦1–♦8 / ♦′,
  required to be a *partial function* (no two instructions share a left-hand
  side) — rainworm machines are deterministic.

A configuration is a word over ``A + Q`` (Definition 19); computation is Thue
semi-system rewriting, one instruction application per step.  The initial
configuration is ``α η11``.

Symbols are plain named objects with a *kind*; the kind determines the class
membership and the parity used by Definition 19 and by the parity glasses of
the green-graph encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..greengraph.labels import Label, Parity


class SymbolKind(Enum):
    """The classes a rainworm symbol can belong to."""

    TAPE_0 = "A0"            # even tape cells
    TAPE_1 = "A1"            # odd tape cells
    STATE_RIGHT_0 = "Q>0"    # right-moving even states
    STATE_RIGHT_1 = "Q>1"    # right-moving odd states
    STATE_LEFT_0 = "Q<0"     # left-moving even states
    STATE_LEFT_1 = "Q<1"     # left-moving odd states
    STATE_GAMMA_0 = "Qg0"    # even "just turned at the rear" states
    STATE_GAMMA_1 = "Qg1"    # odd "just turned at the rear" states
    ALPHA = "α"
    BETA_0 = "β0"
    BETA_1 = "β1"
    GAMMA_0 = "γ0"
    GAMMA_1 = "γ1"
    OMEGA_0 = "ω0"
    ETA_11 = "η11"
    ETA_0 = "η0"
    ETA_1 = "η1"


#: Kinds whose symbols count as machine states (head symbols).
STATE_KINDS = frozenset(
    {
        SymbolKind.STATE_RIGHT_0,
        SymbolKind.STATE_RIGHT_1,
        SymbolKind.STATE_LEFT_0,
        SymbolKind.STATE_LEFT_1,
        SymbolKind.STATE_GAMMA_0,
        SymbolKind.STATE_GAMMA_1,
        SymbolKind.ETA_11,
        SymbolKind.ETA_0,
        SymbolKind.ETA_1,
    }
)

#: Kinds classified as *even* by Definition 19 (ω0 is even by alternation).
EVEN_KINDS = frozenset(
    {
        SymbolKind.ALPHA,
        SymbolKind.BETA_0,
        SymbolKind.GAMMA_0,
        SymbolKind.ETA_0,
        SymbolKind.OMEGA_0,
        SymbolKind.STATE_RIGHT_0,
        SymbolKind.STATE_LEFT_0,
        SymbolKind.STATE_GAMMA_0,
        SymbolKind.TAPE_0,
    }
)

#: Kinds classified as *odd* by Definition 19.
ODD_KINDS = frozenset(
    {
        SymbolKind.BETA_1,
        SymbolKind.GAMMA_1,
        SymbolKind.ETA_1,
        SymbolKind.ETA_11,
        SymbolKind.STATE_RIGHT_1,
        SymbolKind.STATE_LEFT_1,
        SymbolKind.STATE_GAMMA_1,
        SymbolKind.TAPE_1,
    }
)


@dataclass(frozen=True, order=True)
class RWSymbol:
    """A single rainworm symbol (a state or a tape cell)."""

    name: str
    kind: SymbolKind

    @property
    def is_state(self) -> bool:
        """True for head symbols (states and the η specials)."""
        return self.kind in STATE_KINDS

    @property
    def is_tape(self) -> bool:
        """True for tape symbols (A0, A1 and the special cells)."""
        return not self.is_state

    @property
    def is_even(self) -> bool:
        """Definition 19 parity."""
        return self.kind in EVEN_KINDS

    @property
    def is_odd(self) -> bool:
        """Definition 19 parity."""
        return self.kind in ODD_KINDS

    def label(self) -> Label:
        """The green-graph label of this symbol (Section VIII.C)."""
        return Label(self.name, Parity.ODD if self.is_odd else Parity.EVEN)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# The fixed special symbols shared by every rainworm machine.
ALPHA = RWSymbol("α", SymbolKind.ALPHA)
BETA0 = RWSymbol("β0", SymbolKind.BETA_0)
BETA1 = RWSymbol("β1", SymbolKind.BETA_1)
GAMMA0 = RWSymbol("γ0", SymbolKind.GAMMA_0)
GAMMA1 = RWSymbol("γ1", SymbolKind.GAMMA_1)
OMEGA0 = RWSymbol("ω0", SymbolKind.OMEGA_0)
ETA11 = RWSymbol("η11", SymbolKind.ETA_11)
ETA0 = RWSymbol("η0", SymbolKind.ETA_0)
ETA1 = RWSymbol("η1", SymbolKind.ETA_1)

SPECIAL_SYMBOLS: Tuple[RWSymbol, ...] = (
    ALPHA,
    BETA0,
    BETA1,
    GAMMA0,
    GAMMA1,
    OMEGA0,
    ETA11,
    ETA0,
    ETA1,
)


class InstructionForm(Enum):
    """The twelve instruction forms of Section VIII.A."""

    D1 = "♦1"      # η11 ⇒ γ1 η0
    D2 = "♦2"      # η0 ⇒ b η1,             b ∈ A0
    D3 = "♦3"      # η1 ⇒ q ω0,             q ∈ Q⃖1
    D4 = "♦4"      # b′ q ⇒ q′ b,           q ∈ Q⃖0, q′ ∈ Q⃖1, b ∈ A0, b′ ∈ A1
    D4P = "♦4′"    # b q′ ⇒ q b′,           (same classes)
    D5 = "♦5"      # γ1 q ⇒ β1 q′,          q ∈ Q⃖0, q′ ∈ Qγ0
    D5P = "♦5′"    # γ0 q ⇒ β0 q′,          q ∈ Q⃖1, q′ ∈ Qγ1
    D6 = "♦6"      # q b ⇒ γ1 q′,           q ∈ Qγ1, q′ ∈ Q⃗0, b ∈ A0
    D6P = "♦6′"    # q b ⇒ γ0 q′,           q ∈ Qγ0, q′ ∈ Q⃗1, b ∈ A1
    D7 = "♦7"      # q′ b ⇒ b′ q,           q ∈ Q⃗0, q′ ∈ Q⃗1, b ∈ A0, b′ ∈ A1
    D7P = "♦7′"    # q b′ ⇒ b q′,           (same classes)
    D8 = "♦8"      # q ω0 ⇒ b η0,           q ∈ Q⃗1, b ∈ A1


class RainwormError(ValueError):
    """Raised for malformed rainworm machines or instructions."""


@dataclass(frozen=True)
class Instruction:
    """One Thue rewrite rule ``lhs ⇒ rhs`` of a declared form."""

    form: InstructionForm
    lhs: Tuple[RWSymbol, ...]
    rhs: Tuple[RWSymbol, ...]

    def __post_init__(self) -> None:
        _validate_instruction(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        left = " ".join(s.name for s in self.lhs)
        right = " ".join(s.name for s in self.rhs)
        return f"[{self.form.value}] {left} ⇒ {right}"


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise RainwormError(message)


def _validate_instruction(instruction: Instruction) -> None:
    form, lhs, rhs = instruction.form, instruction.lhs, instruction.rhs
    kinds_l = tuple(s.kind for s in lhs)
    kinds_r = tuple(s.kind for s in rhs)
    if form is InstructionForm.D1:
        _expect(kinds_l == (SymbolKind.ETA_11,), "♦1 must rewrite η11")
        _expect(kinds_r == (SymbolKind.GAMMA_1, SymbolKind.ETA_0), "♦1 must produce γ1 η0")
    elif form is InstructionForm.D2:
        _expect(kinds_l == (SymbolKind.ETA_0,), "♦2 must rewrite η0")
        _expect(
            kinds_r == (SymbolKind.TAPE_0, SymbolKind.ETA_1),
            "♦2 must produce b η1 with b ∈ A0",
        )
    elif form is InstructionForm.D3:
        _expect(kinds_l == (SymbolKind.ETA_1,), "♦3 must rewrite η1")
        _expect(
            kinds_r == (SymbolKind.STATE_LEFT_1, SymbolKind.OMEGA_0),
            "♦3 must produce q ω0 with q ∈ Q⃖1",
        )
    elif form is InstructionForm.D4:
        _expect(
            kinds_l == (SymbolKind.TAPE_1, SymbolKind.STATE_LEFT_0)
            and kinds_r == (SymbolKind.STATE_LEFT_1, SymbolKind.TAPE_0),
            "♦4 must be b′ q ⇒ q′ b with q ∈ Q⃖0, q′ ∈ Q⃖1, b ∈ A0, b′ ∈ A1",
        )
    elif form is InstructionForm.D4P:
        _expect(
            kinds_l == (SymbolKind.TAPE_0, SymbolKind.STATE_LEFT_1)
            and kinds_r == (SymbolKind.STATE_LEFT_0, SymbolKind.TAPE_1),
            "♦4′ must be b q′ ⇒ q b′ with q ∈ Q⃖0, q′ ∈ Q⃖1, b ∈ A0, b′ ∈ A1",
        )
    elif form is InstructionForm.D5:
        _expect(
            kinds_l == (SymbolKind.GAMMA_1, SymbolKind.STATE_LEFT_0)
            and kinds_r == (SymbolKind.BETA_1, SymbolKind.STATE_GAMMA_0),
            "♦5 must be γ1 q ⇒ β1 q′ with q ∈ Q⃖0, q′ ∈ Qγ0",
        )
    elif form is InstructionForm.D5P:
        _expect(
            kinds_l == (SymbolKind.GAMMA_0, SymbolKind.STATE_LEFT_1)
            and kinds_r == (SymbolKind.BETA_0, SymbolKind.STATE_GAMMA_1),
            "♦5′ must be γ0 q ⇒ β0 q′ with q ∈ Q⃖1, q′ ∈ Qγ1",
        )
    elif form is InstructionForm.D6:
        _expect(
            kinds_l == (SymbolKind.STATE_GAMMA_1, SymbolKind.TAPE_0)
            and kinds_r == (SymbolKind.GAMMA_1, SymbolKind.STATE_RIGHT_0),
            "♦6 must be q b ⇒ γ1 q′ with q ∈ Qγ1, q′ ∈ Q⃗0, b ∈ A0",
        )
    elif form is InstructionForm.D6P:
        _expect(
            kinds_l == (SymbolKind.STATE_GAMMA_0, SymbolKind.TAPE_1)
            and kinds_r == (SymbolKind.GAMMA_0, SymbolKind.STATE_RIGHT_1),
            "♦6′ must be q b ⇒ γ0 q′ with q ∈ Qγ0, q′ ∈ Q⃗1, b ∈ A1",
        )
    elif form is InstructionForm.D7:
        _expect(
            kinds_l == (SymbolKind.STATE_RIGHT_1, SymbolKind.TAPE_0)
            and kinds_r == (SymbolKind.TAPE_1, SymbolKind.STATE_RIGHT_0),
            "♦7 must be q′ b ⇒ b′ q with q ∈ Q⃗0, q′ ∈ Q⃗1, b ∈ A0, b′ ∈ A1",
        )
    elif form is InstructionForm.D7P:
        _expect(
            kinds_l == (SymbolKind.STATE_RIGHT_0, SymbolKind.TAPE_1)
            and kinds_r == (SymbolKind.TAPE_0, SymbolKind.STATE_RIGHT_1),
            "♦7′ must be q b′ ⇒ b q′ with q ∈ Q⃗0, q′ ∈ Q⃗1, b ∈ A0, b′ ∈ A1",
        )
    elif form is InstructionForm.D8:
        _expect(
            kinds_l == (SymbolKind.STATE_RIGHT_1, SymbolKind.OMEGA_0)
            and kinds_r == (SymbolKind.TAPE_1, SymbolKind.ETA_0),
            "♦8 must be q ω0 ⇒ b η0 with q ∈ Q⃗1, b ∈ A1",
        )
    else:  # pragma: no cover - exhaustive
        raise RainwormError(f"unknown instruction form {form!r}")


@dataclass
class RainwormMachine:
    """A rainworm machine: its name, its symbols and its instruction set ``∆``."""

    name: str
    instructions: Tuple[Instruction, ...] = ()
    _by_lhs: Dict[Tuple[RWSymbol, ...], Instruction] = field(
        default_factory=dict, repr=False
    )

    def __init__(self, name: str, instructions: Iterable[Instruction]) -> None:
        self.name = name
        self.instructions = tuple(instructions)
        self._by_lhs = {}
        for instruction in self.instructions:
            if instruction.lhs in self._by_lhs:
                raise RainwormError(
                    f"∆ must be a partial function: duplicate left-hand side "
                    f"{instruction.lhs!r}"
                )
            self._by_lhs[instruction.lhs] = instruction

    # ------------------------------------------------------------------
    def instruction_for(self, lhs: Sequence[RWSymbol]) -> Optional[Instruction]:
        """The unique instruction with the given left-hand side, if any."""
        return self._by_lhs.get(tuple(lhs))

    def symbols(self) -> FrozenSet[RWSymbol]:
        """Every symbol mentioned by ∆ plus the fixed special symbols."""
        result = set(SPECIAL_SYMBOLS)
        for instruction in self.instructions:
            result.update(instruction.lhs)
            result.update(instruction.rhs)
        return frozenset(result)

    def tape_symbols(self, kind: SymbolKind) -> FrozenSet[RWSymbol]:
        """The symbols of one class (e.g. ``A0``)."""
        return frozenset(s for s in self.symbols() if s.kind is kind)

    def states(self) -> FrozenSet[RWSymbol]:
        """All state symbols of the machine."""
        return frozenset(s for s in self.symbols() if s.is_state)

    def initial_configuration(self) -> Tuple[RWSymbol, ...]:
        """``α η11``."""
        return (ALPHA, ETA11)

    def instruction_count(self) -> int:
        """``|∆|``."""
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RainwormMachine {self.name}: {len(self.instructions)} instructions>"


def tape0(name: str) -> RWSymbol:
    """A tape symbol of class ``A0``."""
    return RWSymbol(name, SymbolKind.TAPE_0)


def tape1(name: str) -> RWSymbol:
    """A tape symbol of class ``A1``."""
    return RWSymbol(name, SymbolKind.TAPE_1)


def state(name: str, kind: SymbolKind) -> RWSymbol:
    """A state symbol of the given class."""
    if kind not in STATE_KINDS:
        raise RainwormError(f"{kind} is not a state kind")
    return RWSymbol(name, kind)
