"""A small library of concrete rainworm machines.

The paper never exhibits a concrete ``∆`` — it only needs the existence of
machines whose creeping behaviour is undecidable.  For experiments we want
actual machines of both kinds:

* :func:`forever_creeping_machine` — the minimal machine that performs the
  creep cycle of Section VIII.A forever (one tape symbol per parity class,
  one state per class, one instruction of every form);
* :func:`immediately_halting_machine` — halts after the mandatory ♦1 step;
* :func:`halting_example_machine` / :func:`looping_example_machine` —
  machines obtained from concrete Turing machines through the
  :mod:`repro.rainworm.encoding` compiler, which exercise the full creep
  cycle a configurable number of times before halting (or never halt).
"""

from __future__ import annotations

from typing import List

from .machine import (
    BETA0,
    BETA1,
    ETA0,
    ETA1,
    ETA11,
    GAMMA0,
    GAMMA1,
    OMEGA0,
    Instruction,
    InstructionForm,
    RainwormMachine,
    SymbolKind,
    state,
    tape0,
    tape1,
)


def _full_cycle_instructions() -> List[Instruction]:
    """One instruction of every form, wired into an everlasting creep cycle."""
    a0 = tape0("a0")
    a1 = tape1("a1")
    left0 = state("l0", SymbolKind.STATE_LEFT_0)
    left1 = state("l1", SymbolKind.STATE_LEFT_1)
    g0 = state("g0", SymbolKind.STATE_GAMMA_0)
    g1 = state("g1", SymbolKind.STATE_GAMMA_1)
    r0 = state("r0", SymbolKind.STATE_RIGHT_0)
    r1 = state("r1", SymbolKind.STATE_RIGHT_1)
    return [
        Instruction(InstructionForm.D1, (ETA11,), (GAMMA1, ETA0)),
        Instruction(InstructionForm.D2, (ETA0,), (a0, ETA1)),
        Instruction(InstructionForm.D3, (ETA1,), (left1, OMEGA0)),
        Instruction(InstructionForm.D4, (a1, left0), (left1, a0)),
        Instruction(InstructionForm.D4P, (a0, left1), (left0, a1)),
        Instruction(InstructionForm.D5, (GAMMA1, left0), (BETA1, g0)),
        Instruction(InstructionForm.D5P, (GAMMA0, left1), (BETA0, g1)),
        Instruction(InstructionForm.D6, (g1, a0), (GAMMA1, r0)),
        Instruction(InstructionForm.D6P, (g0, a1), (GAMMA0, r1)),
        Instruction(InstructionForm.D7, (r1, a0), (a1, r0)),
        Instruction(InstructionForm.D7P, (r0, a1), (a0, r1)),
        Instruction(InstructionForm.D8, (r1, OMEGA0), (a1, ETA0)),
    ]


def forever_creeping_machine() -> RainwormMachine:
    """The minimal machine that creeps forever (uses every instruction form)."""
    return RainwormMachine("forever", _full_cycle_instructions())


def immediately_halting_machine() -> RainwormMachine:
    """A machine that halts right after the mandatory ♦1 step."""
    return RainwormMachine(
        "halt-immediately",
        [Instruction(InstructionForm.D1, (ETA11,), (GAMMA1, ETA0))],
    )


def halting_after_two_cycles_machine() -> RainwormMachine:
    """A machine that completes two creep cycles and then gets stuck.

    It is the forever-creeping machine with the single ♦7′ instruction
    removed: the first time the right sweep meets an odd cell the worm has
    no applicable rule any more.  The resulting final configuration ``u_M``
    has a non-trivial slime trail, which makes this the standard input of
    the Section VIII.E counter-model construction in tests and benchmarks.
    """
    instructions = [
        instruction
        for instruction in _full_cycle_instructions()
        if instruction.form is not InstructionForm.D7P
    ]
    return RainwormMachine("halt-after-two-cycles", instructions)


def halting_example_machine(tm_steps: int = 3) -> RainwormMachine:
    """A rainworm compiled from a Turing machine that halts after *tm_steps* steps.

    The machine performs roughly one full creep cycle per simulated TM step
    and then gets stuck, so it exercises every instruction form before
    halting — exactly what the counter-model construction of Section VIII.E
    needs as input.
    """
    from .encoding import rainworm_from_turing
    from .turing import bounded_counter_machine

    return rainworm_from_turing(
        bounded_counter_machine(tm_steps), name=f"halting-after-{tm_steps}-tm-steps"
    )


def looping_example_machine() -> RainwormMachine:
    """A rainworm compiled from a Turing machine that never halts."""
    from .encoding import rainworm_from_turing
    from .turing import forever_walking_machine

    return rainworm_from_turing(forever_walking_machine(), name="looping-tm")
