"""Rainworm configurations (Definition 19) and their anatomy.

A word ``w ∈ (A + Q)*`` is an *RM configuration* when

1. ``w ∈ A+ Q A*`` — exactly one head symbol;
2. the last symbol of ``w`` is one of ``η11, η0, η1, ω0``;
3. even and odd symbols alternate;
4. ``w = w1 w2`` where ``w1 ∈ α(β1β0)* ∪ α(β1β0)*β1`` (the *slime trail*),
   ``w2`` begins with ``γ0``, ``γ1`` or a ``Qγ`` state (the *rainworm*
   itself) and none of ``α, β0, β1`` occurs in ``w2``.

Lemma 20 states that every word reachable from ``α η11`` is a configuration;
the simulator's tests exercise exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from .machine import (
    ALPHA,
    BETA0,
    BETA1,
    ETA0,
    ETA1,
    ETA11,
    GAMMA0,
    GAMMA1,
    OMEGA0,
    RWSymbol,
    SymbolKind,
)

Configuration = Tuple[RWSymbol, ...]

_TRAIL_SYMBOLS = {ALPHA, BETA0, BETA1}
_FINAL_SYMBOLS = {ETA11, ETA0, ETA1, OMEGA0}
_WORM_OPENERS = {
    SymbolKind.GAMMA_0,
    SymbolKind.GAMMA_1,
    SymbolKind.STATE_GAMMA_0,
    SymbolKind.STATE_GAMMA_1,
    # The initial configuration α η11 is the single degenerate case: its worm
    # part is just η11 (before ♦1 installs the γ marker).  Definition 19(4)
    # lists only γ/Qγ openers, but Lemma 20 counts the initial configuration
    # as a configuration, so we admit η11 as an opener as well.
    SymbolKind.ETA_11,
}


def has_single_head(word: Sequence[RWSymbol]) -> bool:
    """Condition (1): ``w ∈ A+ Q A*``."""
    head_positions = [i for i, s in enumerate(word) if s.is_state]
    if len(head_positions) != 1:
        return False
    return head_positions[0] >= 1


def ends_properly(word: Sequence[RWSymbol]) -> bool:
    """Condition (2): the last symbol is η11, η0, η1 or ω0."""
    return bool(word) and word[-1] in _FINAL_SYMBOLS


def alternates(word: Sequence[RWSymbol]) -> bool:
    """Condition (3): even and odd symbols alternate."""
    for first, second in zip(word, word[1:]):
        if first.is_even == second.is_even:
            return False
    return True


def split_trail_and_worm(
    word: Sequence[RWSymbol],
) -> Optional[Tuple[Tuple[RWSymbol, ...], Tuple[RWSymbol, ...]]]:
    """Condition (4): split ``w`` into the slime trail ``w1`` and the worm ``w2``."""
    symbols = tuple(word)
    split = 0
    while split < len(symbols) and symbols[split] in _TRAIL_SYMBOLS:
        split += 1
    trail, worm = symbols[:split], symbols[split:]
    if not _is_valid_trail(trail):
        return None
    if not worm or worm[0].kind not in _WORM_OPENERS:
        return None
    if any(symbol in _TRAIL_SYMBOLS for symbol in worm):
        return None
    return trail, worm


def _is_valid_trail(trail: Sequence[RWSymbol]) -> bool:
    """Is the trail of the form ``α(β1β0)*`` or ``α(β1β0)*β1``?"""
    if not trail or trail[0] != ALPHA:
        return False
    rest = list(trail[1:])
    index = 0
    while index + 1 < len(rest) and rest[index] == BETA1 and rest[index + 1] == BETA0:
        index += 2
    remaining = rest[index:]
    return remaining == [] or remaining == [BETA1]


def is_configuration(word: Sequence[RWSymbol]) -> bool:
    """All four conditions of Definition 19."""
    return (
        has_single_head(word)
        and ends_properly(word)
        and alternates(word)
        and split_trail_and_worm(word) is not None
    )


def satisfies_shape_conditions(word: Sequence[RWSymbol]) -> bool:
    """Conditions (1)–(3) only (Lemma 22(1) speaks about these)."""
    return has_single_head(word) and ends_properly(word) and alternates(word)


@dataclass(frozen=True)
class ConfigurationAnatomy:
    """A configuration split into its named parts."""

    trail: Tuple[RWSymbol, ...]
    worm: Tuple[RWSymbol, ...]

    @property
    def trail_length(self) -> int:
        """Length of the slime trail (the αβ-path the worm leaves behind)."""
        return len(self.trail)

    @property
    def worm_length(self) -> int:
        """Length of the rainworm proper."""
        return len(self.worm)

    def head(self) -> Optional[RWSymbol]:
        """The head symbol, if present in the worm part."""
        for symbol in self.worm:
            if symbol.is_state:
                return symbol
        return None

    def head_position(self) -> Optional[int]:
        """Index of the head symbol within the full configuration."""
        for index, symbol in enumerate(self.trail + self.worm):
            if symbol.is_state:
                return index
        return None


def anatomy(word: Sequence[RWSymbol]) -> ConfigurationAnatomy:
    """Split a configuration into trail and worm (raises if malformed)."""
    parts = split_trail_and_worm(word)
    if parts is None:
        raise ValueError(f"not an RM configuration: {render(word)}")
    return ConfigurationAnatomy(*parts)


def render(word: Sequence[RWSymbol]) -> str:
    """A compact printable form of a configuration."""
    return " ".join(symbol.name for symbol in word)


def word_names(word: Sequence[RWSymbol]) -> Tuple[str, ...]:
    """The configuration as a tuple of symbol names (green-graph word form)."""
    return tuple(symbol.name for symbol in word)
