"""The finite counter-model construction of Section VIII.E.

When the rainworm ``∆`` halts, ``T_M ∪ T□`` must **not** finitely lead to the
red spider, and the paper proves it by *constructing* a finite green graph
``M̄`` (called ``M`` there) containing ``DI``, satisfying ``T_M``, such that
adding the harmless grids of Section VII Step 3 yields a finite model of
``T_M ∪ T□`` without a 1-2 pattern.

The construction starts from ``M0`` — the graph ``DI`` plus the *final*
configuration ``u_M`` laid out as a zig-zag path from ``a`` to ``b`` — and
then, for ``k_M + 1`` rounds (``k_M`` = length of the halting computation),
applies every rule of ``T_M`` from right to left: whenever the right-hand
side of a rule has a witness pair (condition ♠) whose left-hand side pair is
missing (condition ♥), the left-hand witnesses are added — a fresh vertex in
the general case, or the existing constants ``a``/``b`` when the missing
edge is the ∅ edge (case (ii) of the procedure).  In effect the procedure
re-creates the computation *backwards* from its final configuration, which
is why it terminates after ``k_M + 1`` rounds (Lemmas 40–43).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..engine import EngineSpec
from ..greengraph.graph import GreenGraph, VERTEX_A, VERTEX_B, initial_graph
from ..greengraph.labels import EMPTY
from ..greengraph.rules import GreenGraphRule, GreenGraphRuleSet, RuleKind
from ..separating.grid_rules import grid_rules
from .configuration import Configuration
from .machine import RainwormMachine
from .simulator import halting_computation
from .to_rules import machine_rules


def configuration_graph(configuration: Configuration, name: str = "M0") -> GreenGraph:
    """``M0``: the graph ``DI`` plus *configuration* as a zig-zag path from a to b.

    Symbol ``s_i`` becomes an edge between the ``i-1``-st and ``i``-th path
    vertex, oriented forwards when ``s_i`` is even and backwards when odd, so
    that through the parity glasses the path spells exactly the configuration
    word.  The last path vertex is the constant ``b``.
    """
    graph = initial_graph(name=name)
    symbols = tuple(configuration)
    vertices: List[object] = [VERTEX_A]
    for index in range(1, len(symbols)):
        vertices.append(f"cfg_v{index}")
    vertices.append(VERTEX_B)
    for index, symbol in enumerate(symbols):
        label = symbol.label()
        source, target = vertices[index], vertices[index + 1]
        if symbol.is_odd:
            graph.add_edge(label, target, source)
        else:
            graph.add_edge(label, source, target)
    return graph


def _right_match_exists(
    graph: GreenGraph, rule: GreenGraphRule, x: object, x_prime: object
) -> bool:
    c_prime, d_prime = rule.right
    if rule.kind is RuleKind.AND:
        targets = {edge.target for edge in graph.edges_with_label(c_prime) if edge.source == x}
        return any(
            edge.target in targets
            for edge in graph.edges_with_label(d_prime)
            if edge.source == x_prime
        )
    sources = {edge.source for edge in graph.edges_with_label(c_prime) if edge.target == x}
    return any(
        edge.source in sources
        for edge in graph.edges_with_label(d_prime)
        if edge.target == x_prime
    )


def _left_match_exists(
    graph: GreenGraph, rule: GreenGraphRule, x: object, x_prime: object
) -> bool:
    c, d = rule.left
    if rule.kind is RuleKind.AND:
        targets = {edge.target for edge in graph.edges_with_label(c) if edge.source == x}
        return any(
            edge.target in targets
            for edge in graph.edges_with_label(d)
            if edge.source == x_prime
        )
    sources = {edge.source for edge in graph.edges_with_label(c) if edge.target == x}
    return any(
        edge.source in sources
        for edge in graph.edges_with_label(d)
        if edge.target == x_prime
    )


def _add_left_witnesses(
    graph: GreenGraph,
    rule: GreenGraphRule,
    x: object,
    x_prime: object,
    counter: itertools.count,
) -> None:
    c, d = rule.left
    if d == EMPTY:
        # Case (ii): reuse the constants and the existing H∅(a, b) edge.
        if rule.kind is RuleKind.AND:
            graph.add_edge(c, x, VERTEX_B)
        else:
            graph.add_edge(c, VERTEX_A, x)
        return
    fresh = f"rev_{next(counter)}"
    if rule.kind is RuleKind.AND:
        graph.add_edge(c, x, fresh)
        graph.add_edge(d, x_prime, fresh)
    else:
        graph.add_edge(c, fresh, x)
        graph.add_edge(d, fresh, x_prime)


def reverse_construction(
    start: GreenGraph,
    rules: GreenGraphRuleSet,
    rounds: int,
) -> GreenGraph:
    """The bounded right-to-left saturation of Section VIII.E."""
    current = start.copy(name=f"{start.name}·reverse")
    counter = itertools.count()
    for _ in range(rounds):
        snapshot = current.copy()
        vertices = sorted(snapshot.vertices(), key=repr)
        added = False
        for rule in rules:
            for x, x_prime in itertools.product(vertices, repeat=2):
                if not _right_match_exists(snapshot, rule, x, x_prime):
                    continue
                if _left_match_exists(snapshot, rule, x, x_prime):
                    continue
                _add_left_witnesses(current, rule, x, x_prime, counter)
                added = True
        if not added:
            break
    return current


@dataclass
class CountermodelReport:
    """The counter-model ``M̄`` together with its health checks."""

    machine: RainwormMachine
    final_configuration: Configuration
    steps: int
    base_graph: GreenGraph
    countermodel: GreenGraph
    satisfies_machine_rules: bool
    beta_edges_only_initial: bool
    with_grids: Optional[GreenGraph] = None
    grid_pattern_free: Optional[bool] = None

    @property
    def is_valid(self) -> bool:
        """Did every checked property of Lemma 26 / Section VIII.E hold?"""
        checks = [self.satisfies_machine_rules, self.beta_edges_only_initial]
        if self.grid_pattern_free is not None:
            checks.append(self.grid_pattern_free)
        return all(checks)


def build_countermodel(
    machine: RainwormMachine,
    max_steps: int = 500,
    extra_rounds: int = 1,
    add_grids: bool = True,
    grid_stages: int = 10,
    max_atoms: int = 60_000,
    engine: EngineSpec = None,
) -> CountermodelReport:
    """Run the full Section VIII.E construction for a *halting* machine.

    The machine is simulated to obtain ``u_M`` and ``k_M``; ``M̄`` is built by
    ``k_M + extra_rounds`` reverse rounds; the optional grid phase chases
    ``T□`` over ``M̄`` (bounded) and checks that no 1-2 pattern appears.
    *engine* selects the chase engine of the grid phase.
    """
    final_configuration, steps = halting_computation(machine, max_steps)
    base = configuration_graph(final_configuration)
    rules = machine_rules(machine)
    countermodel = reverse_construction(base, rules, rounds=steps + extra_rounds)
    satisfied = rules.is_satisfied_by(countermodel)
    beta_ok = _beta_edges_only_initial(base, countermodel)
    with_grids = None
    pattern_free = None
    if add_grids:
        grid_chase = grid_rules().chase(
            countermodel, max_stages=grid_stages, max_atoms=max_atoms, engine=engine
        )
        with_grids = grid_chase.graph()
        pattern_free = grid_chase.first_stage_with_one_two_pattern() is None
    return CountermodelReport(
        machine=machine,
        final_configuration=final_configuration,
        steps=steps,
        base_graph=base,
        countermodel=countermodel,
        satisfies_machine_rules=satisfied,
        beta_edges_only_initial=beta_ok,
        with_grids=with_grids,
        grid_pattern_free=pattern_free,
    )


def _beta_edges_only_initial(base: GreenGraph, countermodel: GreenGraph) -> bool:
    """Lemma 26 (second claim): every β edge of ``M̄`` is already an edge of ``M0``."""
    for label_name in ("β0", "β1"):
        for edge in countermodel.edges_with_label(label_name):
            if not base.has_edge(edge.label_name, edge.source, edge.target):
                return False
    return True
