"""Creeping: the operational semantics of rainworm machines.

A computation step is a single Thue semi-system rewriting: ``w ⇒_M v`` when
``w = w1 s w2``, ``v = w1 t w2`` and ``s ⇒ t ∈ ∆``.  Because ``∆`` is a
partial function and reachable words are configurations, at most one rewrite
is applicable to a reachable word (Lemma 22(2)); the simulator nevertheless
*checks* uniqueness and reports violations, which is how the test suite
exercises the lemma.

``run`` produces a trace; ``creeps_at_least`` / ``halts_within`` are the
bounded stand-ins for the (undecidable, Lemma 21) "creeps forever" question.
``chase_observed_words`` / ``simulation_matches_chase`` re-derive the same
computation through the green-graph chase of ``T_M`` (Lemma 25) on a chase
engine of the caller's choice, cross-validating the direct simulator against
the declarative route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..engine import EngineSpec
from .configuration import Configuration, anatomy, is_configuration, render, word_names
from .machine import Instruction, RainwormMachine


@dataclass(frozen=True)
class RewriteMatch:
    """A position at which an instruction applies."""

    position: int
    instruction: Instruction


def applicable_rewrites(
    machine: RainwormMachine, word: Sequence[object]
) -> List[RewriteMatch]:
    """All positions/instructions applicable to *word* (usually 0 or 1)."""
    matches: List[RewriteMatch] = []
    symbols = tuple(word)
    for position in range(len(symbols)):
        for width in (1, 2):
            if position + width > len(symbols):
                continue
            candidate = symbols[position : position + width]
            instruction = machine.instruction_for(candidate)
            if instruction is not None:
                matches.append(RewriteMatch(position, instruction))
    return matches


def step(
    machine: RainwormMachine, word: Configuration
) -> Optional[Configuration]:
    """One computation step, or ``None`` when the machine has halted.

    Raises ``RuntimeError`` when more than one rewrite is applicable — for
    words satisfying Definition 19(1) this would contradict Lemma 22(2) and
    indicates a malformed machine.
    """
    matches = applicable_rewrites(machine, word)
    if not matches:
        return None
    if len(matches) > 1:
        raise RuntimeError(
            f"non-deterministic rewriting of {render(word)}: "
            + ", ".join(repr(m.instruction) for m in matches)
        )
    match = matches[0]
    symbols = tuple(word)
    width = len(match.instruction.lhs)
    return (
        symbols[: match.position]
        + match.instruction.rhs
        + symbols[match.position + width :]
    )


@dataclass
class RunResult:
    """The outcome of a bounded run."""

    trace: List[Configuration]
    halted: bool

    @property
    def steps(self) -> int:
        """Number of computation steps performed."""
        return len(self.trace) - 1

    @property
    def final(self) -> Configuration:
        """The last configuration reached."""
        return self.trace[-1]

    def trail_lengths(self) -> List[int]:
        """Slime-trail length after every step (growth ⇔ completed creep cycles)."""
        lengths = []
        for configuration in self.trace:
            try:
                lengths.append(anatomy(configuration).trail_length)
            except ValueError:
                lengths.append(-1)
        return lengths

    def all_configurations_valid(self) -> bool:
        """Lemma 20: every reachable word is an RM configuration."""
        return all(is_configuration(word) for word in self.trace)


def run(
    machine: RainwormMachine,
    max_steps: int,
    start: Optional[Configuration] = None,
) -> RunResult:
    """Run the machine for at most *max_steps* steps from *start* (default αη11)."""
    current = tuple(start) if start is not None else machine.initial_configuration()
    trace: List[Configuration] = [current]
    for _ in range(max_steps):
        successor = step(machine, current)
        if successor is None:
            return RunResult(trace=trace, halted=True)
        current = successor
        trace.append(current)
    return RunResult(trace=trace, halted=False)


def halts_within(machine: RainwormMachine, max_steps: int) -> bool:
    """Does the machine halt within *max_steps* steps?"""
    return run(machine, max_steps).halted


def creeps_at_least(machine: RainwormMachine, max_steps: int) -> bool:
    """Does the machine keep creeping for at least *max_steps* steps?"""
    return not halts_within(machine, max_steps)


def halting_computation(
    machine: RainwormMachine, max_steps: int
) -> Tuple[Configuration, int]:
    """The final configuration ``u_M`` and the step count ``k_M`` of a halting run.

    Raises ``RuntimeError`` when the machine does not halt within the bound —
    callers that need ``u_M`` (the counter-model construction of Section
    VIII.E) must know their machine halts.
    """
    result = run(machine, max_steps)
    if not result.halted:
        raise RuntimeError(
            f"{machine.name} did not halt within {max_steps} steps"
        )
    return result.final, result.steps


def chase_observed_words(
    machine: RainwormMachine,
    chase_stages: int,
    max_atoms: int = 40_000,
    max_length: int = 80,
    engine: EngineSpec = None,
) -> FrozenSet[Tuple[str, ...]]:
    """The words of a bounded chase of ``T_M`` over ``DI`` (Lemma 25 route).

    By Lemma 25 the chase of the machine's green-graph rules re-creates the
    worm's computation as the words of the growing graph; this is the
    declarative counterpart of :func:`run`, executed on the selected chase
    *engine* (default: the semi-naive engine of :mod:`repro.engine`).
    """
    from ..greengraph.graph import initial_graph
    from ..greengraph.parity import words
    from .to_rules import machine_rules

    outcome = machine_rules(machine).chase(
        initial_graph(),
        max_stages=chase_stages,
        max_atoms=max_atoms,
        keep_snapshots=False,
        engine=engine,
    )
    return words(outcome.graph(), max_length=max_length)


def simulation_matches_chase(
    machine: RainwormMachine,
    simulate_steps: int,
    chase_stages: int,
    max_atoms: int = 40_000,
    engine: EngineSpec = None,
) -> bool:
    """Does every simulated configuration occur among the chase words?

    Bounded empirical check of Lemma 25: the operational trace of
    :func:`run` must be a subset of the word language produced by
    :func:`chase_observed_words` (given enough chase stages).
    """
    trace = run(machine, simulate_steps).trace
    reachable = {word_names(configuration) for configuration in trace}
    longest = max((len(word) for word in reachable), default=0)
    observed = chase_observed_words(
        machine,
        chase_stages,
        max_atoms=max_atoms,
        max_length=max(longest, 1),
        engine=engine,
    )
    return reachable <= observed


def predecessors(
    machine: RainwormMachine, word: Configuration, candidates: Sequence[Configuration]
) -> List[Configuration]:
    """The members of *candidates* that rewrite to *word* in one step.

    Lemma 22(3) bounds the number of predecessors of any configuration by a
    machine-dependent constant ``c_M``; the tests use this helper to check
    the bound empirically.
    """
    return [candidate for candidate in candidates if step(machine, candidate) == tuple(word)]
