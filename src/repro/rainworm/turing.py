"""Deterministic single-tape Turing machines.

Lemma 21 of the paper states that it is undecidable whether a given rainworm
machine creeps forever, "easy to prove using textbook techniques".  To make
the source of undecidability concrete, we implement the textbook object — a
deterministic Turing machine over a one-way infinite tape — and, in
:mod:`repro.rainworm.encoding`, a compiler from Turing machines to rainworm
machines such that the rainworm creeps forever exactly when the Turing
machine runs forever.

Conventions (required by the encoding):

* the tape is one-way infinite to the right, initially all blanks;
* the machine is deterministic; a missing transition means "halt";
* the machine never moves left from cell 0 (a standard normal form — every
  TM can be converted to one by shifting its tape one cell to the right).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Tuple


class Move(Enum):
    """Head movement directions."""

    LEFT = "L"
    RIGHT = "R"


BLANK = "_"


@dataclass(frozen=True)
class TMTransition:
    """One transition ``δ(state, read) = (next_state, write, move)``."""

    next_state: str
    write: str
    move: Move


class TuringMachine:
    """A deterministic single-tape Turing machine (one-way infinite tape)."""

    def __init__(
        self,
        name: str,
        initial_state: str,
        transitions: Dict[Tuple[str, str], TMTransition],
        blank: str = BLANK,
    ) -> None:
        self.name = name
        self.initial_state = initial_state
        self.blank = blank
        self._transitions = dict(transitions)

    # ------------------------------------------------------------------
    @property
    def transitions(self) -> Dict[Tuple[str, str], TMTransition]:
        """The transition table."""
        return dict(self._transitions)

    def transition(self, state: str, symbol: str) -> Optional[TMTransition]:
        """``δ(state, symbol)``, or ``None`` when the machine halts there."""
        return self._transitions.get((state, symbol))

    def states(self) -> FrozenSet[str]:
        """All states mentioned by the machine."""
        result = {self.initial_state}
        for (state, _), rule in self._transitions.items():
            result.add(state)
            result.add(rule.next_state)
        return frozenset(result)

    def tape_alphabet(self) -> FrozenSet[str]:
        """All tape symbols mentioned by the machine (always includes the blank)."""
        result = {self.blank}
        for (_, read), rule in self._transitions.items():
            result.add(read)
            result.add(rule.write)
        return frozenset(result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TuringMachine {self.name}: {len(self._transitions)} transitions>"


@dataclass(frozen=True)
class TMConfiguration:
    """A Turing machine configuration: tape contents, head position, state."""

    state: str
    tape: Tuple[str, ...]
    head: int

    def read(self, blank: str) -> str:
        """The symbol under the head."""
        if 0 <= self.head < len(self.tape):
            return self.tape[self.head]
        return blank


def initial_tm_configuration(machine: TuringMachine) -> TMConfiguration:
    """The initial configuration: empty tape, head on cell 0."""
    return TMConfiguration(machine.initial_state, (), 0)


def tm_step(
    machine: TuringMachine, configuration: TMConfiguration
) -> Optional[TMConfiguration]:
    """One TM step, or ``None`` when the machine halts.

    Raises ``RuntimeError`` on a left move from cell 0 (forbidden by the
    normal form the encoding relies on).
    """
    symbol = configuration.read(machine.blank)
    rule = machine.transition(configuration.state, symbol)
    if rule is None:
        return None
    tape: List[str] = list(configuration.tape)
    while len(tape) <= configuration.head:
        tape.append(machine.blank)
    tape[configuration.head] = rule.write
    head = configuration.head + (1 if rule.move is Move.RIGHT else -1)
    if head < 0:
        raise RuntimeError(
            f"{machine.name} moved left from cell 0 — not in the required normal form"
        )
    return TMConfiguration(rule.next_state, tuple(tape), head)


def run_turing_machine(
    machine: TuringMachine, max_steps: int
) -> Tuple[List[TMConfiguration], bool]:
    """Run for at most *max_steps* steps; return the trace and whether it halted."""
    current = initial_tm_configuration(machine)
    trace = [current]
    for _ in range(max_steps):
        successor = tm_step(machine, current)
        if successor is None:
            return trace, True
        current = successor
        trace.append(current)
    return trace, False


def tm_halts_within(machine: TuringMachine, max_steps: int) -> bool:
    """Does the machine halt within *max_steps* steps (started on a blank tape)?"""
    return run_turing_machine(machine, max_steps)[1]


# ----------------------------------------------------------------------
# Concrete example machines
# ----------------------------------------------------------------------
def bounded_counter_machine(steps: int) -> TuringMachine:
    """A machine that writes ``1`` while walking right for *steps* cells, then halts."""
    if steps < 1:
        raise ValueError("need at least one step")
    transitions: Dict[Tuple[str, str], TMTransition] = {}
    for index in range(steps):
        transitions[(f"q{index}", BLANK)] = TMTransition(f"q{index + 1}", "1", Move.RIGHT)
    # q{steps} has no outgoing transition: the machine halts there.
    return TuringMachine(f"count-{steps}", "q0", transitions)


def forever_walking_machine() -> TuringMachine:
    """A machine that walks right forever, alternating the symbols it writes."""
    transitions = {
        ("walk_a", BLANK): TMTransition("walk_b", "1", Move.RIGHT),
        ("walk_b", BLANK): TMTransition("walk_a", "0", Move.RIGHT),
        # If it ever re-reads its own output it keeps going as well.
        ("walk_a", "1"): TMTransition("walk_a", "1", Move.RIGHT),
        ("walk_a", "0"): TMTransition("walk_a", "0", Move.RIGHT),
        ("walk_b", "1"): TMTransition("walk_b", "1", Move.RIGHT),
        ("walk_b", "0"): TMTransition("walk_b", "0", Move.RIGHT),
    }
    return TuringMachine("forever-walk", "walk_a", transitions)


def zigzag_machine(width: int) -> TuringMachine:
    """A machine that bounces between cell 0 and cell *width* forever.

    Exercises left moves in the encoding (the head marker travelling toward
    the rainworm's rear) while still never halting.
    """
    if width < 1:
        raise ValueError("width must be positive")
    transitions: Dict[Tuple[str, str], TMTransition] = {}
    for index in range(width):
        for symbol in (BLANK, "x"):
            transitions[(f"right{index}", symbol)] = TMTransition(
                f"right{index + 1}" if index + 1 < width else "left0", "x", Move.RIGHT
            )
    for index in range(width):
        for symbol in (BLANK, "x"):
            transitions[(f"left{index}", symbol)] = TMTransition(
                f"left{index + 1}" if index + 1 < width else "right0", "x", Move.LEFT
            )
    # Repair the boundary: from cell 0 we must never move left, so the last
    # left state turns around by moving right instead.
    for symbol in (BLANK, "x"):
        transitions[(f"left{width - 1}", symbol)] = TMTransition("right0", "x", Move.RIGHT)
    return TuringMachine(f"zigzag-{width}", "right0", transitions)


def busy_little_machine() -> TuringMachine:
    """A small machine with a non-trivial halting computation (several left/right moves)."""
    transitions = {
        ("s0", BLANK): TMTransition("s1", "1", Move.RIGHT),
        ("s1", BLANK): TMTransition("s2", "1", Move.RIGHT),
        ("s2", BLANK): TMTransition("s3", "0", Move.LEFT),
        ("s3", "1"): TMTransition("s4", "0", Move.LEFT),
        ("s4", "1"): TMTransition("s5", "1", Move.RIGHT),
        # s5 reads "0" and has no transition: halt.
    }
    return TuringMachine("busy-little", "s0", transitions)
