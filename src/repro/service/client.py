"""A thin keep-alive JSON client for the chase service.

Built on :mod:`http.client` so the CLI and tests need nothing outside the
standard library.  One :class:`ServiceClient` holds one persistent HTTP/1.1
connection (re-established transparently when the server side drops it) —
it is deliberately **not** thread-safe; concurrent callers should hold one
client each, mirroring how the server batches per-session work anyway.

Every non-2xx response raises :class:`ServiceAPIError` carrying the HTTP
status and the server's typed error payload, so callers can distinguish a
400 (their request) from a 503 (the chase substrate) without string
matching.

**Trace propagation.**  Set :attr:`ServiceClient.trace_id` (or pass
``trace_id=`` per request) to send an ``X-Repro-Trace-Id`` header the
server will stamp on every trace line the request emits; the server echoes
the id (supplied or generated) back, and the client records it as
:attr:`ServiceClient.last_trace_id` — so a caller can always ask
``/server/trace`` for exactly the request it just made.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, Optional, Sequence
from urllib.parse import urlsplit

__all__ = ["ServiceAPIError", "ServiceClient"]


class ServiceAPIError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str, error_type: str = "") -> None:
        super().__init__(f"[{status}] {error_type or 'error'}: {message}")
        self.status = status
        self.message = message
        self.error_type = error_type


class ServiceClient:
    """JSON-over-HTTP access to a :class:`~repro.service.server.ReproServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Sent as ``X-Repro-Trace-Id`` on every request when set.
        self.trace_id: Optional[str] = None
        #: The trace id the server echoed for the most recent request.
        self.last_trace_id: Optional[str] = None
        self._conn: Optional[http.client.HTTPConnection] = None

    @classmethod
    def from_url(cls, url: str, timeout: float = 120.0) -> "ServiceClient":
        parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
        return cls(parts.hostname or "127.0.0.1", parts.port or 8765, timeout)

    # -- transport -----------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._conn.connect()
            # Headers and body go out as separate writes; without this the
            # Nagle/delayed-ACK interaction costs ~40ms per request.
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def close(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _raw(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        trace_id: Optional[str] = None,
    ):
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers: Dict[str, str] = {}
        if body:
            headers["Content-Type"] = "application/json"
        wanted_trace = trace_id or self.trace_id
        if wanted_trace:
            headers["X-Repro-Trace-Id"] = wanted_trace
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                # A keep-alive connection the server has since dropped; one
                # reconnect covers it, anything beyond that is a real fault.
                self.close()
                if attempt == 2:
                    raise
        echoed = response.getheader("X-Repro-Trace-Id")
        if echoed:
            self.last_trace_id = echoed
        return response.status, raw

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        *,
        trace_id: Optional[str] = None,
    ) -> dict:
        status, raw = self._raw(method, path, payload, trace_id)
        data = json.loads(raw) if raw else {}
        if status >= 400:
            error = data.get("error", {}) if isinstance(data, dict) else {}
            raise ServiceAPIError(
                status,
                error.get("message", raw.decode("utf-8", "replace")),
                error.get("type", ""),
            )
        return data

    def request_text(
        self, method: str, path: str, *, trace_id: Optional[str] = None
    ) -> str:
        """A non-JSON endpoint (``/metrics`` exposition, trace JSONL)."""
        status, raw = self._raw(method, path, None, trace_id)
        text = raw.decode("utf-8", "replace")
        if status >= 400:
            message, error_type = text, ""
            try:
                error = json.loads(raw).get("error", {})
                message = error.get("message", text)
                error_type = error.get("type", "")
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServiceAPIError(status, message, error_type)
        return text

    # -- service surface ----------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/health")

    def server_stats(self) -> dict:
        return self.request("GET", "/server/stats")

    def metrics_text(self) -> str:
        """The raw ``/metrics`` Prometheus exposition text."""
        return self.request_text("GET", "/metrics")

    def server_trace(self) -> str:
        """The server's trace ring as JSONL text (newest ~ring lines)."""
        return self.request_text("GET", "/server/trace")

    def access_log(self) -> list:
        """The server's in-memory access-log entries, oldest first."""
        return self.request("GET", "/server/access-log")["entries"]

    def list_sessions(self) -> list:
        return self.request("GET", "/sessions")["sessions"]

    def create_session(
        self,
        name: Optional[str] = None,
        *,
        max_atoms: Optional[int] = None,
        default_strategy: Optional[str] = None,
    ) -> dict:
        payload: Dict[str, object] = {}
        if name is not None:
            payload["name"] = name
        if max_atoms is not None:
            payload["max_atoms"] = max_atoms
        if default_strategy is not None:
            payload["default_strategy"] = default_strategy
        return self.request("POST", "/sessions", payload)

    def show_session(self, session_id: str) -> dict:
        return self.request("GET", f"/sessions/{session_id}")

    def delete_session(self, session_id: str) -> dict:
        return self.request("DELETE", f"/sessions/{session_id}")

    def load(self, session_id: str, name: str, facts: str) -> dict:
        return self.request(
            "POST", f"/sessions/{session_id}/structures", {"name": name, "facts": facts}
        )

    def extend(self, session_id: str, name: str, facts: str) -> dict:
        return self.request(
            "POST",
            f"/sessions/{session_id}/structures/{name}/extend",
            {"facts": facts},
        )

    def structure(self, session_id: str, name: str) -> dict:
        return self.request("GET", f"/sessions/{session_id}/structures/{name}")

    def drop(self, session_id: str, name: str) -> dict:
        return self.request("DELETE", f"/sessions/{session_id}/structures/{name}")

    def chase(
        self,
        session_id: str,
        structure: str,
        rules: Sequence[str],
        **knobs,
    ) -> dict:
        payload: Dict[str, object] = {"structure": structure, "rules": list(rules)}
        payload.update({k: v for k, v in knobs.items() if v is not None})
        return self.request("POST", f"/sessions/{session_id}/chase", payload)

    def query(self, session_id: str, structure: str, query: str) -> dict:
        return self.request(
            "POST",
            f"/sessions/{session_id}/query",
            {"structure": structure, "query": query},
        )

    def explain(
        self, session_id: str, structure: str, query: str, strategy: Optional[str] = None
    ) -> dict:
        payload: Dict[str, object] = {"structure": structure, "query": query}
        if strategy is not None:
            payload["strategy"] = strategy
        return self.request("POST", f"/sessions/{session_id}/explain", payload)

    def containment(self, session_id: str, contained: str, container: str) -> dict:
        return self.request(
            "POST",
            f"/sessions/{session_id}/containment",
            {"contained": contained, "container": container},
        )

    def determinacy(
        self,
        session_id: str,
        views: Sequence[str],
        query: str,
        *,
        max_stages: Optional[int] = None,
        max_atoms: Optional[int] = None,
    ) -> dict:
        payload: Dict[str, object] = {"views": list(views), "query": query}
        if max_stages is not None:
            payload["max_stages"] = max_stages
        if max_atoms is not None:
            payload["max_atoms"] = max_atoms
        return self.request("POST", f"/sessions/{session_id}/determinacy", payload)
