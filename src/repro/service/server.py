"""The chase service: a stdlib threaded-HTTP front end over sessions.

Built on :class:`http.server.ThreadingHTTPServer` — one OS thread per
in-flight request, daemonised so a dying server never wedges on a stuck
client.  Handler threads do no chase work themselves beyond calling into
:mod:`repro.service.sessions`, where the per-session lock batches
concurrent requests for one session onto its keep-alive engine pools.

Routes (all request/response bodies are JSON)::

    GET    /health
    GET    /server/stats
    GET    /sessions                      list sessions
    POST   /sessions                      {name?, max_atoms?, default_strategy?}
    GET    /sessions/<id>                 session detail (accounting + metrics)
    DELETE /sessions/<id>                 evict: forget indexes, close pools
    POST   /sessions/<id>/structures      {name, facts}
    GET    /sessions/<id>/structures/<n>  canonical fact listing
    DELETE /sessions/<id>/structures/<n>
    POST   /sessions/<id>/structures/<n>/extend   {facts}
    POST   /sessions/<id>/chase           {structure, rules, workers?, ...}
    POST   /sessions/<id>/query           {structure, query}
    POST   /sessions/<id>/explain         {structure, query, strategy?}
    POST   /sessions/<id>/containment     {contained, container}
    POST   /sessions/<id>/determinacy     {views, query, max_stages?, max_atoms?}

Failure semantics: typed library errors map onto HTTP statuses —
parse/config errors (``ParseError``, ``TGDError``, ``QueryError``,
``ResilienceConfigError``, any ``ValueError``/``TypeError``) → 400, unknown
session/structure → 404, capacity (sessions or atoms) → 429, a chase that
hit its budget with ``raise_on_budget`` → 409, and an *operational* chase
failure (:class:`~repro.chase.chase.ChaseExecutionError` — the typed
"substrate died and recovery was exhausted" signal of the resilience
layer) → 503, since retrying against a healthy pool may well succeed.
Everything else is a 500.  Error bodies are
``{"error": {"status", "type", "message"}}``.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from ..chase.chase import ChaseBudgetExceeded, ChaseExecutionError
from .sessions import ServiceError, SessionManager

__all__ = ["ReproServer", "serve"]

_SESSION = r"(?P<session>[0-9a-f]{12})"
_NAME = r"(?P<name>[^/]+)"


def _status_for(exc: BaseException) -> int:
    if isinstance(exc, ServiceError):
        return exc.status
    if isinstance(exc, ChaseBudgetExceeded):
        return 409
    if isinstance(exc, ChaseExecutionError):
        return 503
    # ParseError / TGDError / QueryError / ResilienceConfigError are all
    # ValueError subclasses; TypeError covers malformed payload shapes.
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return 400
    return 500


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"
    # Keep-alive JSON round trips write headers and body separately; with
    # Nagle on, that interacts with delayed ACKs into a ~40ms stall per
    # request on loopback.
    disable_nagle_algorithm = True

    # Routes are (method, compiled pattern, bound-method name); the table is
    # built once at class level and dispatched by the three do_* entrypoints.
    ROUTES: List[Tuple[str, "re.Pattern", str]] = [
        ("GET", re.compile(r"^/health$"), "health"),
        ("GET", re.compile(r"^/server/stats$"), "server_stats"),
        ("GET", re.compile(r"^/sessions$"), "list_sessions"),
        ("POST", re.compile(r"^/sessions$"), "create_session"),
        ("GET", re.compile(rf"^/sessions/{_SESSION}$"), "show_session"),
        ("DELETE", re.compile(rf"^/sessions/{_SESSION}$"), "delete_session"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/structures$"), "load_structure"),
        (
            "GET",
            re.compile(rf"^/sessions/{_SESSION}/structures/{_NAME}$"),
            "show_structure",
        ),
        (
            "DELETE",
            re.compile(rf"^/sessions/{_SESSION}/structures/{_NAME}$"),
            "drop_structure",
        ),
        (
            "POST",
            re.compile(rf"^/sessions/{_SESSION}/structures/{_NAME}/extend$"),
            "extend_structure",
        ),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/chase$"), "chase"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/query$"), "query"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/explain$"), "explain"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/containment$"), "containment"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/determinacy$"), "determinacy"),
    ]

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> SessionManager:
        return self.server.repro_server.manager

    def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
        if not self.server.repro_server.quiet:
            super().log_message(fmt, *args)

    def _payload(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _reply(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        for route_method, pattern, name in self.ROUTES:
            if route_method != method:
                continue
            match = pattern.match(path)
            if match is None:
                continue
            try:
                status, payload = getattr(self, name)(**match.groupdict())
            except Exception as exc:  # typed → HTTP status, see module doc
                status = _status_for(exc)
                payload = {
                    "error": {
                        "status": status,
                        "type": type(exc).__name__,
                        "message": str(exc),
                    }
                }
                self.manager.count_request(error=True)
            else:
                self.manager.count_request()
            self._reply(status, payload)
            return
        self.manager.count_request(error=True)
        self._reply(
            404,
            {"error": {"status": 404, "type": "NoRoute", "message": f"no route {method} {path}"}},
        )

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # -- handlers ------------------------------------------------------
    def health(self) -> Tuple[int, Dict[str, object]]:
        return 200, {"status": "ok", "time": time.time()}

    def server_stats(self) -> Tuple[int, Dict[str, object]]:
        return 200, self.manager.accounting()

    def list_sessions(self) -> Tuple[int, Dict[str, object]]:
        return 200, {"sessions": self.manager.list_sessions()}

    def create_session(self) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        session = self.manager.create(
            payload.get("name"),
            max_atoms=payload.get("max_atoms"),
            default_strategy=payload.get("default_strategy"),
        )
        return 201, session.describe()

    def show_session(self, session: str) -> Tuple[int, Dict[str, object]]:
        target = self.manager.get(session)
        target.touch()
        return 200, target.describe(verbose=True)

    def delete_session(self, session: str) -> Tuple[int, Dict[str, object]]:
        return 200, self.manager.delete(session)

    def _session(self, session_id: str):
        session = self.manager.get(session_id)
        session.touch()
        return session

    def load_structure(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 201, target.load_structure(
            str(payload["name"]), str(payload.get("facts", ""))
        )

    def extend_structure(self, session: str, name: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.load_structure(
            name, str(payload.get("facts", "")), extend=True
        )

    def show_structure(self, session: str, name: str) -> Tuple[int, Dict[str, object]]:
        return 200, self._session(session).structure_facts(name)

    def drop_structure(self, session: str, name: str) -> Tuple[int, Dict[str, object]]:
        return 200, self._session(session).drop_structure(name)

    def chase(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.chase(
            str(payload["structure"]),
            list(payload.get("rules") or ()),
            result_name=payload.get("result_name"),
            workers=payload.get("workers", 0),
            match_strategy=payload.get("match_strategy", "nested"),
            strategy=payload.get("strategy", "lazy"),
            max_stages=payload.get("max_stages"),
            max_atoms=payload.get("max_atoms"),
            resilience=payload.get("resilience"),
        )

    def query(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.query(str(payload["structure"]), str(payload["query"]))

    def explain(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.explain(
            str(payload["structure"]),
            str(payload["query"]),
            strategy=payload.get("strategy"),
        )

    def containment(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.containment(
            str(payload["contained"]), str(payload["container"])
        )

    def determinacy(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.determinacy(
            list(payload.get("views") or ()),
            str(payload["query"]),
            max_stages=payload.get("max_stages", 50),
            max_atoms=payload.get("max_atoms", 20_000),
        )


class ReproServer:
    """The long-lived service: HTTP listener + session manager + TTL sweeper.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports the
    bound one.  Use as a context manager, or :meth:`start` / :meth:`close`
    explicitly.  :meth:`close` is the full teardown: stop the sweeper, stop
    accepting requests, then close every session — which hands back indexes
    (``forget``), closes keep-alive pools and releases their shared-memory
    segments, so a cleanly shut server leaks neither children nor
    ``/dev/shm`` entries.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: int = 16,
        idle_ttl: Optional[float] = None,
        session_max_atoms: int = 1_000_000,
        default_strategy: str = "auto",
        sweep_interval: float = 1.0,
        quiet: bool = True,
    ) -> None:
        self.manager = SessionManager(
            max_sessions=max_sessions,
            idle_ttl=idle_ttl,
            session_max_atoms=session_max_atoms,
            default_strategy=default_strategy,
        )
        self.quiet = quiet
        self._sweep_interval = sweep_interval
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.repro_server = self
        self._thread: Optional[threading.Thread] = None
        self._sweeper: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._serving = False
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _sweep_loop(self) -> None:
        while not self._stop.wait(self._sweep_interval):
            self.manager.sweep()

    def _start_sweeper(self) -> None:
        if self.manager.idle_ttl is not None and self._sweeper is None:
            self._sweeper = threading.Thread(
                target=self._sweep_loop, name="repro-session-sweeper", daemon=True
            )
            self._sweeper.start()

    def start(self) -> "ReproServer":
        """Serve in a background thread; returns self once the port is live."""
        self._start_sweeper()
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's ``repro serve``)."""
        self._start_sweeper()
        self._serving = True
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._serving:
            # No-op once a foreground serve_forever already returned;
            # unserved servers must skip it (shutdown() waits on the loop).
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self._sweeper is not None:
            self._sweeper.join(timeout=5)
        self.manager.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(host: str = "127.0.0.1", port: int = 8765, **kwargs) -> ReproServer:
    """Construct and start a background :class:`ReproServer` (convenience)."""
    return ReproServer(host, port, **kwargs).start()
