"""The chase service: a stdlib threaded-HTTP front end over sessions.

Built on :class:`http.server.ThreadingHTTPServer` — one OS thread per
in-flight request, daemonised so a dying server never wedges on a stuck
client.  Handler threads do no chase work themselves beyond calling into
:mod:`repro.service.sessions`, where the per-session lock batches
concurrent requests for one session onto its keep-alive engine pools.

Routes (request/response bodies are JSON unless noted)::

    GET    /health
    GET    /server/stats
    GET    /metrics                       Prometheus text exposition
    GET    /server/trace                  trace ring as JSON lines
    GET    /server/access-log             structured access-log entries
    GET    /sessions                      list sessions
    POST   /sessions                      {name?, max_atoms?, default_strategy?}
    GET    /sessions/<id>                 session detail (accounting + metrics)
    DELETE /sessions/<id>                 evict: forget indexes, close pools
    POST   /sessions/<id>/structures      {name, facts}
    GET    /sessions/<id>/structures/<n>  canonical fact listing
    DELETE /sessions/<id>/structures/<n>
    POST   /sessions/<id>/structures/<n>/extend   {facts}
    POST   /sessions/<id>/chase           {structure, rules, workers?, ...}
    POST   /sessions/<id>/query           {structure, query}
    POST   /sessions/<id>/explain         {structure, query, strategy?}
    POST   /sessions/<id>/containment     {contained, container}
    POST   /sessions/<id>/determinacy     {views, query, max_stages?, max_atoms?}

Failure semantics: typed library errors map onto HTTP statuses —
parse/config errors (``ParseError``, ``TGDError``, ``QueryError``,
``ResilienceConfigError``, any ``ValueError``/``TypeError``) → 400, unknown
session/structure → 404, capacity (sessions or atoms) → 429, a chase that
hit its budget with ``raise_on_budget`` → 409, and an *operational* chase
failure (:class:`~repro.chase.chase.ChaseExecutionError` — the typed
"substrate died and recovery was exhausted" signal of the resilience
layer) → 503, since retrying against a healthy pool may well succeed.
Everything else is a 500.  Error bodies are
``{"error": {"status", "type", "message"}}``.

**Request-scoped telemetry.**  Every request carries a trace id — the
inbound ``X-Repro-Trace-Id`` header when the caller supplies one, a fresh
id otherwise — echoed back as a response header and stamped (thread-locally)
on every trace line the request emits, so the ``service.request`` span and
the engine spans nested under it form one connected tree per request in the
server's trace ring.  Completion is recorded in the access log and the
per-route/per-session latency histograms rendered by ``GET /metrics``.
All of it observes and none of it steers: responses are bit-identical with
telemetry on or off (``tests/test_service_telemetry.py`` pins this).
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from ..chase.chase import ChaseBudgetExceeded, ChaseExecutionError
from ..obs.exposition import CONTENT_TYPE as EXPOSITION_CONTENT_TYPE
from ..obs.exposition import Exposition
from ..obs.metrics import CLOCK
from ..obs.trace import NULL_SPAN, get_tracer
from .sessions import BadRequestError, ServiceError, SessionManager
from .telemetry import ServiceTelemetry, new_trace_id

__all__ = ["ReproServer", "serve"]

_SESSION = r"(?P<session>[0-9a-f]{12})"
_NAME = r"(?P<name>[^/]+)"


def _status_for(exc: BaseException) -> int:
    if isinstance(exc, ServiceError):
        return exc.status
    if isinstance(exc, ChaseBudgetExceeded):
        return 409
    if isinstance(exc, ChaseExecutionError):
        return 503
    # ParseError / TGDError / QueryError / ResilienceConfigError are all
    # ValueError subclasses; TypeError covers malformed payload shapes.
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return 400
    return 500


class _RawText:
    """A non-JSON response body (exposition text, trace JSONL)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"
    # Keep-alive JSON round trips write headers and body separately; with
    # Nagle on, that interacts with delayed ACKs into a ~40ms stall per
    # request on loopback.
    disable_nagle_algorithm = True

    # Routes are (method, compiled pattern, bound-method name); the table is
    # built once at class level and dispatched by the three do_* entrypoints.
    ROUTES: List[Tuple[str, "re.Pattern", str]] = [
        ("GET", re.compile(r"^/health$"), "health"),
        ("GET", re.compile(r"^/server/stats$"), "server_stats"),
        ("GET", re.compile(r"^/metrics$"), "metrics"),
        ("GET", re.compile(r"^/server/trace$"), "server_trace"),
        ("GET", re.compile(r"^/server/access-log$"), "server_access_log"),
        ("GET", re.compile(r"^/sessions$"), "list_sessions"),
        ("POST", re.compile(r"^/sessions$"), "create_session"),
        ("GET", re.compile(rf"^/sessions/{_SESSION}$"), "show_session"),
        ("DELETE", re.compile(rf"^/sessions/{_SESSION}$"), "delete_session"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/structures$"), "load_structure"),
        (
            "GET",
            re.compile(rf"^/sessions/{_SESSION}/structures/{_NAME}$"),
            "show_structure",
        ),
        (
            "DELETE",
            re.compile(rf"^/sessions/{_SESSION}/structures/{_NAME}$"),
            "drop_structure",
        ),
        (
            "POST",
            re.compile(rf"^/sessions/{_SESSION}/structures/{_NAME}/extend$"),
            "extend_structure",
        ),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/chase$"), "chase"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/query$"), "query"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/explain$"), "explain"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/containment$"), "containment"),
        ("POST", re.compile(rf"^/sessions/{_SESSION}/determinacy$"), "determinacy"),
    ]

    # -- plumbing ------------------------------------------------------
    @property
    def manager(self) -> SessionManager:
        return self.server.repro_server.manager

    def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
        if not self.server.repro_server.quiet:
            super().log_message(fmt, *args)

    def _payload(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _reply(
        self, status: int, payload, trace_id: Optional[str] = None
    ) -> int:
        if isinstance(payload, _RawText):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if trace_id is not None:
            self.send_header("X-Repro-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)
        return len(body)

    def _dispatch(self, method: str) -> None:
        telemetry = self.server.repro_server.telemetry
        path = self.path.split("?", 1)[0]
        started = CLOCK()
        bytes_in = int(self.headers.get("Content-Length") or 0)
        trace_id: Optional[str] = None
        tracer = None
        if telemetry.enabled:
            trace_id = self.headers.get("X-Repro-Trace-Id") or new_trace_id()
            tracer = get_tracer()

        route: Optional[str] = None
        handler_args: Dict[str, str] = {}
        for route_method, pattern, name in self.ROUTES:
            if route_method != method:
                continue
            match = pattern.match(path)
            if match is not None:
                route, handler_args = name, match.groupdict()
                break

        error_type: Optional[str] = None
        if route is None:
            status = 404
            error_type = "NoRoute"
            payload = {
                "error": {
                    "status": 404,
                    "type": "NoRoute",
                    "message": f"no route {method} {path}",
                }
            }
        else:
            if tracer is not None:
                # Thread-local stamp: every trace line this request emits —
                # the service.request span and any engine spans nested under
                # it — carries the request's trace id.
                tracer.set_trace_id(trace_id)
            span = (
                tracer.span(
                    "service.request", method=method, route=route, path=path
                )
                if tracer is not None
                else NULL_SPAN
            )
            try:
                with span:
                    try:
                        status, payload = getattr(self, route)(**handler_args)
                    except Exception as exc:  # typed → HTTP, see module doc
                        status = _status_for(exc)
                        error_type = type(exc).__name__
                        payload = {
                            "error": {
                                "status": status,
                                "type": error_type,
                                "message": str(exc),
                            }
                        }
                        span.note(status=status, error=error_type)
                    else:
                        span.note(status=status)
            finally:
                if tracer is not None:
                    tracer.set_trace_id(None)
        self.manager.count_request(error=error_type is not None)
        bytes_out = self._reply(status, payload, trace_id=trace_id)

        if telemetry.enabled:
            route_label = route or "<no-route>"
            elapsed = CLOCK() - started
            session_id = handler_args.get("session")
            atoms: Optional[int] = None
            faults: Optional[Dict[str, int]] = None
            degraded = False
            if isinstance(payload, dict):
                atoms_value = payload.get("atoms")
                if isinstance(atoms_value, int):
                    atoms = atoms_value
                stats = payload.get("stats")
                if isinstance(stats, dict):
                    raw_faults = stats.get("faults") or {}
                    if any(raw_faults.values()):
                        faults = {
                            kind: count
                            for kind, count in sorted(raw_faults.items())
                            if count
                        }
                    if raw_faults.get("degraded"):
                        degraded = True
            telemetry.observe_request(
                route=route_label,
                status=status,
                seconds=elapsed,
                bytes_in=bytes_in,
                bytes_out=bytes_out,
                trace_id=trace_id,
                method=method,
                path=path,
                wall_time=time.time(),
                session=session_id,
                error=error_type,
                atoms=atoms,
                faults=faults,
                degraded=degraded,
            )
            if session_id:
                histogram = telemetry.session_histogram(
                    session_id, self.manager
                )
                if histogram is not None:
                    histogram.observe(elapsed)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # -- handlers ------------------------------------------------------
    def health(self) -> Tuple[int, Dict[str, object]]:
        return 200, {"status": "ok", "time": time.time()}

    def server_stats(self) -> Tuple[int, Dict[str, object]]:
        return 200, self.manager.accounting()

    def metrics(self) -> Tuple[int, object]:
        return 200, _RawText(
            self.server.repro_server.render_metrics(), EXPOSITION_CONTENT_TYPE
        )

    def server_trace(self) -> Tuple[int, object]:
        ring = self.server.repro_server.telemetry.trace_ring
        if ring is None:
            raise BadRequestError(
                "trace ring disabled (telemetry off or --trace-ring 0)"
            )
        return 200, _RawText(ring.text(), "application/x-ndjson")

    def server_access_log(self) -> Tuple[int, Dict[str, object]]:
        telemetry = self.server.repro_server.telemetry
        return 200, {"entries": telemetry.access_log.entries()}

    def list_sessions(self) -> Tuple[int, Dict[str, object]]:
        return 200, {"sessions": self.manager.list_sessions()}

    def create_session(self) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        session = self.manager.create(
            payload.get("name"),
            max_atoms=payload.get("max_atoms"),
            default_strategy=payload.get("default_strategy"),
        )
        return 201, session.describe()

    def show_session(self, session: str) -> Tuple[int, Dict[str, object]]:
        target = self.manager.get(session)
        target.touch()
        return 200, target.describe(verbose=True)

    def delete_session(self, session: str) -> Tuple[int, Dict[str, object]]:
        return 200, self.manager.delete(session)

    def _session(self, session_id: str):
        session = self.manager.get(session_id)
        session.touch()
        return session

    def load_structure(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 201, target.load_structure(
            str(payload["name"]), str(payload.get("facts", ""))
        )

    def extend_structure(self, session: str, name: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.load_structure(
            name, str(payload.get("facts", "")), extend=True
        )

    def show_structure(self, session: str, name: str) -> Tuple[int, Dict[str, object]]:
        return 200, self._session(session).structure_facts(name)

    def drop_structure(self, session: str, name: str) -> Tuple[int, Dict[str, object]]:
        return 200, self._session(session).drop_structure(name)

    def chase(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.chase(
            str(payload["structure"]),
            list(payload.get("rules") or ()),
            result_name=payload.get("result_name"),
            workers=payload.get("workers", 0),
            match_strategy=payload.get("match_strategy", "nested"),
            strategy=payload.get("strategy", "lazy"),
            max_stages=payload.get("max_stages"),
            max_atoms=payload.get("max_atoms"),
            resilience=payload.get("resilience"),
        )

    def query(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.query(str(payload["structure"]), str(payload["query"]))

    def explain(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.explain(
            str(payload["structure"]),
            str(payload["query"]),
            strategy=payload.get("strategy"),
        )

    def containment(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.containment(
            str(payload["contained"]), str(payload["container"])
        )

    def determinacy(self, session: str) -> Tuple[int, Dict[str, object]]:
        payload = self._payload()
        target = self._session(session)
        return 200, target.determinacy(
            list(payload.get("views") or ()),
            str(payload["query"]),
            max_stages=payload.get("max_stages", 50),
            max_atoms=payload.get("max_atoms", 20_000),
        )


class ReproServer:
    """The long-lived service: HTTP listener + session manager + TTL sweeper.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports the
    bound one.  Use as a context manager, or :meth:`start` / :meth:`close`
    explicitly.  :meth:`close` is the full teardown: stop the sweeper, stop
    accepting requests, then close every session — which hands back indexes
    (``forget``), closes keep-alive pools and releases their shared-memory
    segments, so a cleanly shut server leaks neither children nor
    ``/dev/shm`` entries.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: int = 16,
        idle_ttl: Optional[float] = None,
        session_max_atoms: int = 1_000_000,
        default_strategy: str = "auto",
        sweep_interval: float = 1.0,
        quiet: bool = True,
        telemetry: bool = True,
        trace_ring: int = 20_000,
        access_log: Optional[str] = None,
        access_log_capacity: int = 4096,
        slow_request_seconds: float = 1.0,
    ) -> None:
        self.manager = SessionManager(
            max_sessions=max_sessions,
            idle_ttl=idle_ttl,
            session_max_atoms=session_max_atoms,
            default_strategy=default_strategy,
        )
        self.telemetry = ServiceTelemetry(
            enabled=telemetry,
            trace_ring=trace_ring,
            access_log_path=access_log,
            access_log_capacity=access_log_capacity,
            slow_request_seconds=slow_request_seconds,
        )
        self.quiet = quiet
        self._sweep_interval = sweep_interval
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.repro_server = self
        self._thread: Optional[threading.Thread] = None
        self._sweeper: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._serving = False
        self._closed = False

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _sweep_loop(self) -> None:
        while not self._stop.wait(self._sweep_interval):
            self.manager.sweep()

    def _start_sweeper(self) -> None:
        if self.manager.idle_ttl is not None and self._sweeper is None:
            self._sweeper = threading.Thread(
                target=self._sweep_loop, name="repro-session-sweeper", daemon=True
            )
            self._sweeper.start()

    def render_metrics(self) -> str:
        """The full ``GET /metrics`` exposition text: server + every session."""
        exposition = Exposition()
        self.telemetry.render(exposition)
        accounting = self.manager.accounting()
        exposition.add(
            "sessions_used", "gauge", accounting["sessions"]["used"]
        )
        exposition.add(
            "sessions_total", "gauge", accounting["sessions"]["total"]
        )
        exposition.add("peak_rss_kb", "gauge", accounting["peak_rss_kb"])
        exposition.add(
            "uptime_seconds", "gauge", accounting["uptime_seconds"]
        )
        shapes = accounting["shape_cache"]
        exposition.add(
            "shape_cache_hits_total", "counter", shapes["hits"]
        )
        exposition.add(
            "shape_cache_misses_total", "counter", shapes["misses"]
        )
        exposition.add(
            "shape_cache_entries", "gauge", shapes["entries"]
        )
        for session in self.manager.sessions():
            exposition.add_registry(
                session.metrics,
                labels={"session": session.id, "name": session.name},
                namespace="session_",
            )
        return exposition.render()

    def start(self) -> "ReproServer":
        """Serve in a background thread; returns self once the port is live."""
        self.telemetry.install()
        self._start_sweeper()
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's ``repro serve``)."""
        self.telemetry.install()
        self._start_sweeper()
        self._serving = True
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._serving:
            # No-op once a foreground serve_forever already returned;
            # unserved servers must skip it (shutdown() waits on the loop).
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        if self._sweeper is not None:
            self._sweeper.join(timeout=5)
        self.manager.close()
        self.telemetry.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(host: str = "127.0.0.1", port: int = 8765, **kwargs) -> ReproServer:
    """Construct and start a background :class:`ReproServer` (convenience)."""
    return ReproServer(host, port, **kwargs).start()
