"""Server-side session state for chase-as-a-service.

A *session* is the unit of tenancy: it owns one
:class:`~repro.query.context.EvalContext` (so chased indexes and compiled
plan caches never leak between tenants — the process-global
``shared_context`` is never touched by the service), one
:class:`~repro.obs.metrics.MetricsRegistry`, a dictionary of named
structures, and a small LRU of keep-alive chase engines whose worker pools
survive across requests.  A per-session lock serialises the session's own
work, which is what batches concurrent requests for the same session onto
the same keep-alive pool instead of spawning one pool per request.

Capacity accounting follows the MAAS operations-handler idiom: every
resource reports ``total`` / ``used`` / ``available`` where available is
derived, never stored.  Sessions are bounded in atoms; the manager is
bounded in sessions; both surfaces reject (HTTP 429 at the server layer)
rather than degrade when full.

The :class:`ShapeCache` is the one deliberately *cross*-session piece of
state.  Compiled query plans live per-index and per-context, so they cannot
be shared safely — but the *shape* a plan is keyed by (the parsed atom
tuple) can be.  Interning rule/query text to parsed objects means (a) every
session presenting the same rule text gets the *same* TGD objects, which is
what lets a keep-alive pool be reused across requests
(:meth:`SemiNaiveChaseEngine._ensure_pool` compares TGDs by identity), and
(b) repeated queries hit the per-index plan caches with identical shape
keys instead of re-compiling.  Parsed objects are immutable, so sharing
them carries no isolation risk.
"""

from __future__ import annotations

import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..chase.tgd import TGD, parse_tgds
from ..core.builders import parse_cq, parse_facts
from ..core.containment import containment_witness
from ..core.query import ConjunctiveQuery
from ..core.structure import Structure
from ..engine import SemiNaiveChaseEngine, ResilienceConfig
from ..engine.strategies import resolve_strategy
from ..greenred.determinacy import check_unrestricted_determinacy
from ..obs.metrics import CLOCK, MetricsRegistry, peak_rss_kb
from ..obs.report import explain as explain_plan
from ..obs.trace import get_tracer
from ..query.context import EvalContext
from ..query.evaluator import evaluate


class ServiceError(Exception):
    """Base class of typed service failures; carries an HTTP status."""

    status = 500


class BadRequestError(ServiceError):
    """The request payload is malformed or references an unknown knob."""

    status = 400


class UnknownSessionError(ServiceError):
    """No live session with that id."""

    status = 404


class UnknownStructureError(ServiceError):
    """The session holds no structure with that name."""

    status = 404


class CapacityError(ServiceError):
    """A total/used/available budget is exhausted (sessions or atoms)."""

    status = 429


class SessionClosedError(ServiceError):
    """The session was evicted or deleted while the request was in flight."""

    status = 410


class ShapeCache:
    """Thread-safe bounded LRU interning rule/query text to parsed objects.

    Shared across sessions: values are immutable (frozen TGDs, conjunctive
    queries), so the only cross-tenant effect is the intended one — identical
    text yields *identical* objects, enabling keep-alive pool reuse and
    plan-shape cache hits (see the module docstring).
    """

    def __init__(self, capacity: int = 512) -> None:
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def _get(self, key: tuple, build):
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return value
        # Parse outside the lock — builders raise ParseError/TGDError for
        # malformed text and holding the lock across that buys nothing.
        value = build()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.misses += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return value

    def query(self, text: str) -> ConjunctiveQuery:
        """The parsed conjunctive query for *text* (interned)."""
        return self._get(("cq", text), lambda: parse_cq(text))

    def rules(self, texts: Sequence[str]) -> Tuple[TGD, ...]:
        """The parsed TGD tuple for *texts* (interned as one unit).

        Interning the whole sequence (not rule-by-rule) is what preserves
        TGD *identity* across requests with the same rule set — the
        property the engine's pool-reuse check relies on.
        """
        key = ("tgds",) + tuple(texts)
        return self._get(key, lambda: tuple(parse_tgds(*texts)))

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }


def _resolve_resilience_spec(spec):
    """Translate the wire-level resilience spec into engine terms.

    ``None`` → supervised defaults, ``False``/``"strict"`` → strict
    fail-fast, a dict → an explicit :class:`ResilienceConfig`.
    """
    if spec is None:
        return None, "default"
    if spec is False or spec == "strict":
        return False, "strict"
    if isinstance(spec, dict):
        allowed = {"stage_deadline", "max_retries", "backoff_seconds", "serial_fallback"}
        unknown = set(spec) - allowed
        if unknown:
            raise BadRequestError(
                f"unknown resilience knob(s) {sorted(unknown)}; known: {sorted(allowed)}"
            )
        try:
            config = ResilienceConfig(enabled=True, **spec)
        except TypeError as exc:
            raise BadRequestError(f"bad resilience spec: {exc}") from exc
        key = tuple(sorted(spec.items()))
        return config, key
    raise BadRequestError(
        f"resilience must be null, false, 'strict' or an object, not {spec!r}"
    )


class Session:
    """One tenant: a context, a metrics registry, structures, engines."""

    def __init__(
        self,
        session_id: str,
        name: str,
        shapes: ShapeCache,
        *,
        max_atoms: int = 1_000_000,
        max_engines: int = 4,
        default_strategy: str = "auto",
        clock=time.time,
    ) -> None:
        self.id = session_id
        self.name = name
        self.shapes = shapes
        self.max_atoms = max_atoms
        self.max_engines = max_engines
        self.context = EvalContext(default_strategy)
        self.metrics = MetricsRegistry()
        self.structures: Dict[str, Structure] = {}
        self._engines: "OrderedDict[tuple, SemiNaiveChaseEngine]" = OrderedDict()
        self._clock = clock
        self.created = clock()
        self.last_used = self.created
        self.requests = 0
        self.closed = False
        # One lock per session: concurrent requests for the same session are
        # serialised here, which batches them onto the session's keep-alive
        # engine pools; requests for *different* sessions run concurrently.
        self.lock = threading.RLock()

    # -- bookkeeping ---------------------------------------------------
    @contextmanager
    def _locked(self) -> Iterator[None]:
        """The session lock, with queue-wait telemetry around the acquire.

        Concurrent requests for one session queue here (that is the design
        — it batches them onto the keep-alive pools), so the wait *is* the
        session's queue delay.  It lands in the session registry's
        ``service.lock.wait_seconds`` histogram and, when tracing is
        active, as a ``service.lock.wait`` instant event under the
        request's ``service.request`` span.  Observation only — the lock
        semantics are untouched.
        """
        waited_from = CLOCK()
        self.lock.acquire()
        waited = CLOCK() - waited_from
        try:
            self.metrics.histogram("service.lock.wait_seconds").observe(waited)
            tracer = get_tracer()
            if tracer is not None:
                tracer.event(
                    "service.lock.wait",
                    session=self.id,
                    seconds=round(waited, 9),
                )
            yield
        finally:
            self.lock.release()

    def touch(self) -> None:
        with self.lock:
            self.last_used = self._clock()
            self.requests += 1

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosedError(f"session {self.id} has been closed")

    @property
    def used_atoms(self) -> int:
        return sum(len(s) for s in self.structures.values())

    def accounting(self) -> Dict[str, int]:
        """MAAS-style atom capacity: available is derived, never stored."""
        used = self.used_atoms
        return {
            "total": self.max_atoms,
            "used": used,
            "available": max(0, self.max_atoms - used),
        }

    def engine_pool(self) -> Dict[str, int]:
        """Keep-alive pool accounting: live engines plus lifetime counters.

        The built/reused/evicted counters always existed in the session
        registry; this surfaces them for ``/server/stats`` so pool reuse is
        visible without pulling each session's verbose detail.
        """
        with self.lock:
            counters = self.metrics.counters

            def value(name: str) -> int:
                instrument = counters.get(name)
                return int(instrument.value) if instrument is not None else 0

            return {
                "engines": len(self._engines),
                "built": value("service.engines.built"),
                "reused": value("service.engines.reused"),
                "evicted": value("service.engines.evicted"),
            }

    def describe(self, *, verbose: bool = False) -> Dict[str, object]:
        with self.lock:
            now = self._clock()
            payload: Dict[str, object] = {
                "id": self.id,
                "name": self.name,
                "created": self.created,
                "idle_seconds": round(max(0.0, now - self.last_used), 3),
                "requests": self.requests,
                "structures": {
                    name: len(structure)
                    for name, structure in sorted(self.structures.items())
                },
                "engines": len(self._engines),
                "atoms": self.accounting(),
            }
            if verbose:
                payload["context"] = self.context.stats()
                payload["metrics"] = self.metrics.snapshot()
            return payload

    # -- structures ----------------------------------------------------
    def _structure(self, name: str) -> Structure:
        structure = self.structures.get(name)
        if structure is None:
            raise UnknownStructureError(
                f"session {self.id} has no structure {name!r}; "
                f"loaded: {sorted(self.structures)}"
            )
        return structure

    def _admit_atoms(self, incoming: int) -> None:
        available = self.max_atoms - self.used_atoms
        if incoming > available:
            raise CapacityError(
                f"session atom capacity exhausted: used {self.used_atoms} of "
                f"{self.max_atoms}, request needs {incoming} more"
            )

    def _store(self, name: str, structure: Structure) -> None:
        old = self.structures.get(name)
        if old is not None:
            self.context.forget(old)
        self.structures[name] = structure

    def load_structure(self, name: str, facts_text: str, extend: bool = False) -> Dict[str, object]:
        """Create (or ``extend=True`` grow) the named structure from fact text."""
        with self._locked():
            self._check_open()
            atoms = parse_facts(facts_text)
            if extend:
                structure = self._structure(name)
                new = sum(1 for atom in atoms if atom not in structure)
                self._admit_atoms(new)
                added = structure.add_atoms(atoms)
            else:
                self._admit_atoms(len(atoms))
                structure = Structure(name=name)
                structure.add_atoms(atoms)
                added = len(structure)
                self._store(name, structure)
            self.metrics.counter("service.structures.atoms_loaded").inc(added)
            return {
                "structure": name,
                "atoms": len(structure),
                "added": added,
                "session_atoms": self.accounting(),
            }

    def structure_facts(self, name: str) -> Dict[str, object]:
        """The structure's facts, canonically ordered (bit-identity probes)."""
        with self._locked():
            self._check_open()
            structure = self._structure(name)
            return {
                "structure": name,
                "atoms": len(structure),
                "facts": sorted(repr(atom) for atom in structure.atoms()),
            }

    def drop_structure(self, name: str) -> Dict[str, object]:
        with self._locked():
            self._check_open()
            structure = self._structure(name)
            self.context.forget(structure)
            del self.structures[name]
            return {"structure": name, "session_atoms": self.accounting()}

    # -- engines -------------------------------------------------------
    def _engine_for(
        self,
        rule_texts: Tuple[str, ...],
        tgds: Tuple[TGD, ...],
        workers: int,
        match_strategy: str,
        strategy: str,
        resilience_spec,
    ) -> SemiNaiveChaseEngine:
        resilience, resilience_key = _resolve_resilience_spec(resilience_spec)
        key = (rule_texts, workers, match_strategy, strategy, resilience_key)
        engine = self._engines.get(key)
        if engine is not None:
            self._engines.move_to_end(key)
            self.metrics.counter("service.engines.reused").inc()
            return engine
        engine = SemiNaiveChaseEngine(
            tgds=list(tgds),
            keep_snapshots=False,
            strategy=resolve_strategy(strategy),
            workers=workers,
            match_strategy=match_strategy,
            resilience=resilience,
            context=self.context,
        )
        self._engines[key] = engine
        self.metrics.counter("service.engines.built").inc()
        while len(self._engines) > self.max_engines:
            _, evicted = self._engines.popitem(last=False)
            evicted.close()
            self.metrics.counter("service.engines.evicted").inc()
        return engine

    # -- operations ----------------------------------------------------
    def chase(
        self,
        structure: str,
        rules: Sequence[str],
        *,
        result_name: Optional[str] = None,
        workers: int = 0,
        match_strategy: str = "nested",
        strategy: str = "lazy",
        max_stages: Optional[int] = None,
        max_atoms: Optional[int] = None,
        resilience=None,
    ) -> Dict[str, object]:
        """Run the chase inside the session; returns run accounting.

        The response's ``stats`` key is ``result.stats.as_dict()`` verbatim
        — including the ``faults`` ledger of supervised parallel runs.
        """
        if not rules:
            raise BadRequestError("chase requires at least one rule")
        with self._locked():
            self._check_open()
            source = self._structure(structure)
            tgds = self.shapes.rules(tuple(rules))
            # The chased copy coexists with its source, so the run's budget
            # is whatever atom capacity the session still has free.
            available = self.max_atoms - self.used_atoms
            if available <= len(source):
                raise CapacityError(
                    f"session atom capacity exhausted: used {self.used_atoms} "
                    f"of {self.max_atoms}, chase of {structure!r} "
                    f"({len(source)} atoms) cannot fit a result"
                )
            engine = self._engine_for(
                tuple(rules), tgds, int(workers), match_strategy, strategy, resilience
            )
            engine.max_stages = max_stages
            engine.max_atoms = (
                available if max_atoms is None else min(int(max_atoms), available)
            )
            with self.metrics.timer("service.chase.wall").time():
                result = engine.run(source)
            name = result_name or f"{structure}::chased"
            self._store(name, result.structure)
            stats = result.stats
            self.metrics.counter("service.chase.runs").inc()
            if stats is not None:
                self.metrics.counter("service.chase.new_atoms").inc(stats.new_atoms)
                self.metrics.counter("service.chase.fired").inc(stats.fired)
                for fault, count in stats.faults.items():
                    self.metrics.counter(f"service.chase.faults.{fault}").inc(count)
            return {
                "structure": name,
                "source": structure,
                "atoms": len(result.structure),
                "reached_fixpoint": result.reached_fixpoint,
                "stages_run": result.stages_run,
                "stats": stats.as_dict() if stats is not None else None,
                "session_atoms": self.accounting(),
            }

    def query(self, structure: str, query_text: str) -> Dict[str, object]:
        with self._locked():
            self._check_open()
            target = self._structure(structure)
            cq = self.shapes.query(query_text)
            with self.metrics.timer("service.query.wall").time():
                answers = evaluate(cq, target, context=self.context)
            self.metrics.counter("service.query.runs").inc()
            self.metrics.counter("service.query.answers").inc(len(answers))
            return {
                "structure": structure,
                "query": cq.name,
                "variables": [str(v) for v in cq.free_variables],
                "answers": sorted([str(t) for t in row] for row in answers),
                "count": len(answers),
                "context": self.context.stats(),
            }

    def explain(
        self, structure: str, query_text: str, strategy: Optional[str] = None
    ) -> Dict[str, object]:
        with self._locked():
            self._check_open()
            target = self._structure(structure)
            cq = self.shapes.query(query_text)
            text = explain_plan(target, cq, context=self.context, strategy=strategy)
            self.metrics.counter("service.explain.runs").inc()
            return {"structure": structure, "query": cq.name, "explain": text}

    def containment(self, contained: str, container: str) -> Dict[str, object]:
        with self._locked():
            self._check_open()
            q1 = self.shapes.query(contained)
            q2 = self.shapes.query(container)
            witness = containment_witness(q1, q2, context=self.context)
            self.metrics.counter("service.containment.runs").inc()
            return {
                "contained": q1.name,
                "container": q2.name,
                "holds": witness is not None,
                "witness": (
                    None
                    if witness is None
                    else {str(var): str(val) for var, val in sorted(
                        witness.items(), key=lambda item: str(item[0])
                    )}
                ),
            }

    def determinacy(
        self,
        views: Sequence[str],
        query_text: str,
        *,
        max_stages: int = 50,
        max_atoms: int = 20_000,
    ) -> Dict[str, object]:
        if not views:
            raise BadRequestError("determinacy requires at least one view")
        with self._locked():
            self._check_open()
            parsed_views = [self.shapes.query(v) for v in views]
            query = self.shapes.query(query_text)
            report = check_unrestricted_determinacy(
                parsed_views,
                query,
                max_stages=max_stages,
                max_atoms=max_atoms,
                context=self.context,
            )
            self.metrics.counter("service.determinacy.runs").inc()
            return {
                "query": query.name,
                "views": [v.name for v in parsed_views],
                "verdict": report.verdict.value,
                "detail": report.detail,
            }

    # -- teardown ------------------------------------------------------
    def close(self) -> None:
        """Release everything: engine pools (and their shm), index hand-offs."""
        with self.lock:
            if self.closed:
                return
            self.closed = True
            while self._engines:
                _, engine = self._engines.popitem(last=False)
                engine.close()
            for structure in self.structures.values():
                self.context.forget(structure)
            self.structures.clear()


class SessionManager:
    """The server's collection of live sessions, bounded and TTL-swept."""

    def __init__(
        self,
        *,
        max_sessions: int = 16,
        idle_ttl: Optional[float] = None,
        session_max_atoms: int = 1_000_000,
        default_strategy: str = "auto",
        clock=time.time,
    ) -> None:
        self.max_sessions = max_sessions
        self.idle_ttl = idle_ttl
        self.session_max_atoms = session_max_atoms
        self.default_strategy = default_strategy
        self.shapes = ShapeCache()
        self._sessions: Dict[str, Session] = {}
        self._lock = threading.RLock()
        self._clock = clock
        self.created_total = 0
        self.evicted_total = 0
        self.requests_total = 0
        self.errors_total = 0
        self.started = clock()

    # -- lifecycle -----------------------------------------------------
    def create(
        self,
        name: Optional[str] = None,
        *,
        max_atoms: Optional[int] = None,
        default_strategy: Optional[str] = None,
    ) -> Session:
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                raise CapacityError(
                    f"session capacity exhausted: {len(self._sessions)} of "
                    f"{self.max_sessions} in use; delete one or raise --max-sessions"
                )
            session_id = uuid.uuid4().hex[:12]
            session = Session(
                session_id,
                name or f"session-{self.created_total + 1}",
                self.shapes,
                max_atoms=max_atoms or self.session_max_atoms,
                default_strategy=default_strategy or self.default_strategy,
                clock=self._clock,
            )
            self._sessions[session_id] = session
            self.created_total += 1
            return session

    def get(self, session_id: str) -> Session:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None or session.closed:
            raise UnknownSessionError(f"no session {session_id!r}")
        return session

    def peek(self, session_id: str) -> Optional[Session]:
        """The live session with that id, or ``None`` — never raises, never
        touches; the telemetry path uses it so recording a latency sample
        can't fail a request whose session was deleted mid-flight."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None or session.closed:
            return None
        return session

    def sessions(self) -> List[Session]:
        """A snapshot list of live sessions (the /metrics renderer's view)."""
        with self._lock:
            return list(self._sessions.values())

    def delete(self, session_id: str) -> Dict[str, object]:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise UnknownSessionError(f"no session {session_id!r}")
        session.close()
        self.evicted_total += 1
        return {"deleted": session_id}

    def sweep(self, now: Optional[float] = None) -> List[str]:
        """Evict sessions idle past the TTL; returns the evicted ids."""
        if self.idle_ttl is None:
            return []
        now = self._clock() if now is None else now
        with self._lock:
            stale = [
                sid
                for sid, session in self._sessions.items()
                if now - session.last_used > self.idle_ttl
            ]
            evicted = [self._sessions.pop(sid) for sid in stale]
        for session in evicted:
            session.close()
        self.evicted_total += len(evicted)
        return [session.id for session in evicted]

    def close(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    # -- reporting -----------------------------------------------------
    def list_sessions(self) -> List[Dict[str, object]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [session.describe() for session in sessions]

    def accounting(self) -> Dict[str, object]:
        with self._lock:
            live = list(self._sessions.values())
            payload: Dict[str, object] = {
                "sessions": {
                    "total": self.max_sessions,
                    "used": len(live),
                    "available": max(0, self.max_sessions - len(live)),
                },
                "created_total": self.created_total,
                "evicted_total": self.evicted_total,
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "uptime_seconds": round(self._clock() - self.started, 3),
                "idle_ttl": self.idle_ttl,
                "shape_cache": self.shapes.stats(),
            }
        # Per-session detail is gathered outside the manager lock (each
        # entry takes its session's lock) to keep lock order one-way.
        payload["peak_rss_kb"] = peak_rss_kb()
        payload["sessions_detail"] = [
            {
                "id": session.id,
                "name": session.name,
                "requests": session.requests,
                "atoms": session.accounting(),
                "engine_pool": session.engine_pool(),
            }
            for session in live
        ]
        return payload

    def count_request(self, error: bool = False) -> None:
        with self._lock:
            self.requests_total += 1
            if error:
                self.errors_total += 1
