"""Chase-as-a-service: a session server over the engine stack.

The library's chase engines, query runtime and certificate checkers are all
in-process APIs; this package turns them into a long-lived multi-tenant
service (stdlib HTTP only — nothing to install):

* :mod:`~repro.service.sessions` — the tenancy model: per-session
  :class:`~repro.query.context.EvalContext` and
  :class:`~repro.obs.metrics.MetricsRegistry`, keep-alive engine pools,
  MAAS-style total/used/available capacity accounting, idle-TTL eviction,
  and the cross-session :class:`~repro.service.sessions.ShapeCache`;
* :mod:`~repro.service.server` — the ``ThreadingHTTPServer`` front end and
  its typed-error → HTTP-status mapping;
* :mod:`~repro.service.client` — a keep-alive ``http.client`` JSON client
  (what the ``repro`` CLI speaks);
* :mod:`~repro.service.telemetry` — request-scoped service telemetry: the
  trace ring behind ``GET /server/trace``, the structured access log, and
  the per-route histograms rendered by ``GET /metrics``.

See the README's "Running as a service" section for the endpoint table and
CLI walkthrough.
"""

from .client import ServiceAPIError, ServiceClient
from .server import ReproServer, serve
from .telemetry import AccessLog, ServiceTelemetry, TraceRing, new_trace_id
from .sessions import (
    BadRequestError,
    CapacityError,
    ServiceError,
    Session,
    SessionClosedError,
    SessionManager,
    ShapeCache,
    UnknownSessionError,
    UnknownStructureError,
)

__all__ = [
    "AccessLog",
    "BadRequestError",
    "CapacityError",
    "ReproServer",
    "ServiceAPIError",
    "ServiceClient",
    "ServiceError",
    "ServiceTelemetry",
    "Session",
    "SessionClosedError",
    "SessionManager",
    "ShapeCache",
    "TraceRing",
    "UnknownSessionError",
    "UnknownStructureError",
    "new_trace_id",
    "serve",
]
