"""Request-scoped service telemetry: trace ring, access log, histograms.

Everything here follows the observability layer's discipline —
**observe, never steer**: the server consults none of it when handling a
request, so a service run with telemetry on is bit-identical to one with it
off (pinned by ``tests/test_service_telemetry.py``).  Three artifacts per
server:

* :class:`TraceRing` — a bounded in-memory ring of JSON-lines trace output.
  The server mounts a :class:`~repro.obs.trace.Tracer` over it (unless an
  application tracer is already active), so every ``service.request`` span
  and every engine span under it lands here, stamped with the request's
  trace id.  ``GET /server/trace`` downloads the ring verbatim — the text is
  directly consumable by ``python -m repro.obs summarize - --trace-id X``.
* :class:`AccessLog` — one structured JSON entry per completed request
  (trace id, session, route, status, latency, atoms touched, fault/degrade
  flags, a ``slow`` flag past the configured threshold), kept in a bounded
  ring and optionally appended line-by-line to a file.
* :class:`ServiceTelemetry` — the aggregate: per-route latency histograms,
  payload-size histograms, route/status request counters and the
  ``server.errors`` counter, all rendered into the ``GET /metrics``
  Prometheus exposition next to each session's registry.

The per-request ledgers reconcile by construction: for any route, the
access-log entry count equals ``repro_request_seconds_count{route=…}``
equals the number of ``service.request`` span pairs for that route in the
ring (modulo ring eviction) — the three-ledger test and the CI smoke assert
exactly that.
"""

from __future__ import annotations

import itertools
import json
import threading
import uuid
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..obs.exposition import Exposition
from ..obs.metrics import CLOCK, Histogram, LATENCY_BUCKETS, SIZE_BUCKETS
from ..obs.trace import (
    Tracer,
    get_tracer,
    install_tracer,
    render_line,
    uninstall_tracer,
)

__all__ = ["AccessLog", "ServiceTelemetry", "TraceRing", "new_trace_id"]

#: Random per-process prefix + consecutive suffix: ids stay globally unique
#: (the prefix) without paying a uuid4 per request on the hot path.
_ID_PREFIX = uuid.uuid4().hex[:8]
_ID_SUFFIX = itertools.count(1)


def new_trace_id() -> str:
    """A fresh request trace id (16 hex chars, collision-safe per server)."""
    return f"{_ID_PREFIX}{next(_ID_SUFFIX):08x}"


class TraceRing:
    """A bounded, thread-safe ring of trace records, serialized on read.

    The ring's tracer (:class:`_RingTracer`) defers JSON serialization:
    each emitted line is kept as the raw ``render_line`` argument tuple and
    only rendered when the ring is downloaded — the request hot path pays a
    tuple append, not a ``json`` encode.  Keeps the newest *capacity*
    records and counts evictions so a downloaded ring says whether it is
    complete.
    """

    def __init__(self, capacity: int = 20_000) -> None:
        self.capacity = capacity
        self.dropped = 0
        self._records: "deque[tuple]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def push(self, record: tuple) -> None:
        with self._lock:
            if len(self._records) == self.capacity:
                self.dropped += 1
            self._records.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def text(self) -> str:
        """The ring as one JSONL text (rendered now, newest-first order kept)."""
        with self._lock:
            records = list(self._records)
        return "".join(render_line(*record) + "\n" for record in records)


class _RingTracer(Tracer):
    """A tracer that sinks raw records into a :class:`TraceRing`.

    Identical wire output to a plain :class:`~repro.obs.trace.Tracer`
    (both go through :func:`~repro.obs.trace.render_line`), but the
    serialization happens at download time instead of on the request path.
    """

    __slots__ = ("_ring",)

    def __init__(self, ring: TraceRing) -> None:
        super().__init__(ring.push)  # unused: _emit is fully overridden
        self._ring = ring

    def _emit(
        self,
        kind: str,
        name: str,
        now: float,
        attrs: dict,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        duration: Optional[float] = None,
    ) -> None:
        if parent_id is None:
            stack = self._stack
            parent_id = stack[-1] if stack else 0
        self._ring.push((
            kind, name, now, attrs, span_id, parent_id, duration,
            getattr(self._local, "trace_id", None),
        ))


#: Access-log record tuple layout (see :func:`_render_entry`).
_ENTRY_FIELDS = (
    "t", "trace", "method", "route", "path", "status", "seconds",
    "bytes_in", "bytes_out", "session", "error", "atoms", "faults",
    "degraded", "slow",
)


def _render_entry(fields: tuple) -> Dict[str, object]:
    """One access-log record tuple → the wire/report dict."""
    (t, trace, method, route, path, status, seconds, bytes_in, bytes_out,
     session, error, atoms, faults, degraded, slow) = fields
    entry: Dict[str, object] = {
        "t": round(t, 3),
        "trace": trace,
        "method": method,
        "route": route,
        "path": path,
        "status": status,
        "seconds": round(seconds, 6),
        "bytes_in": bytes_in,
        "bytes_out": bytes_out,
    }
    if session:
        entry["session"] = session
    if error is not None:
        entry["error"] = error
    if atoms is not None:
        entry["atoms"] = atoms
    if faults:
        entry["faults"] = faults
    if degraded:
        entry["degraded"] = True
    if slow:
        entry["slow"] = True
    return entry


class AccessLog:
    """A bounded ring of per-request records, optionally mirrored to a file.

    Records are stored as raw tuples and rendered to dicts only when read
    (``GET /server/access-log``, ``entries()``) — the request path pays one
    GIL-atomic deque append.  With a file sink configured, each record is
    additionally rendered and appended line-buffered at request time, so a
    crashed server still leaves complete JSON lines behind.
    """

    def __init__(self, capacity: int = 4096, path: Optional[str] = None) -> None:
        self.capacity = capacity
        self._records: "deque[tuple]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._file = (
            open(path, "a", encoding="utf-8", buffering=1) if path else None
        )

    def record(self, fields: tuple) -> None:
        self._records.append(fields)
        if self._file is not None:
            line = json.dumps(_render_entry(fields)) + "\n"
            with self._lock:
                if self._file is not None:
                    self._file.write(line)

    def entries(self) -> List[Dict[str, object]]:
        return [_render_entry(fields) for fields in list(self._records)]

    def __len__(self) -> int:
        return len(self._records)

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class ServiceTelemetry:
    """Server-wide request telemetry: histograms, counters, ring, log.

    ``enabled=False`` is the hard off switch: every observation method
    returns immediately, no tracer is mounted, and the request path pays a
    single attribute read — the configuration the telemetry-overhead
    benchmark compares against.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        trace_ring: int = 20_000,
        access_log_path: Optional[str] = None,
        access_log_capacity: int = 4096,
        slow_request_seconds: float = 1.0,
    ) -> None:
        self.enabled = enabled
        self.slow_request_seconds = slow_request_seconds
        self.trace_ring: Optional[TraceRing] = None
        self.tracer: Optional[Tracer] = None
        self._installed = False
        if enabled and trace_ring > 0:
            self.trace_ring = TraceRing(trace_ring)
            self.tracer = _RingTracer(self.trace_ring)
        self.access_log = AccessLog(access_log_capacity, access_log_path)
        self._lock = threading.Lock()
        # Route-labelled instruments, exposed as {route=…} label sets.
        self._latency: Dict[str, Histogram] = {}
        self._requests: Dict[Tuple[str, int], int] = {}
        self._bytes_in = Histogram(SIZE_BUCKETS)
        self._bytes_out = Histogram(SIZE_BUCKETS)
        # Cache of each session's request-latency histogram handle, so the
        # request tail skips the manager and registry locks after the first
        # request to a session (dict reads are GIL-atomic).
        self._session_latency: Dict[str, Histogram] = {}
        self.errors = 0
        self.slow_requests = 0

    # -- tracer lifecycle ----------------------------------------------
    def install(self) -> None:
        """Mount the ring tracer globally iff no tracer is already active.

        An application/test tracer always wins — the service adds its ring
        only when tracing is otherwise off, and :meth:`uninstall` removes
        only its own.
        """
        if self.tracer is not None and not self._installed:
            if get_tracer() is None:
                install_tracer(self.tracer)
                self._installed = True

    def uninstall(self) -> None:
        if self._installed and self.tracer is not None:
            uninstall_tracer(self.tracer)
            self._installed = False

    def close(self) -> None:
        self.uninstall()
        self.access_log.close()

    # -- per-request recording -----------------------------------------
    def route_histogram(self, route: str) -> Histogram:
        with self._lock:
            histogram = self._latency.get(route)
            if histogram is None:
                histogram = self._latency[route] = Histogram(LATENCY_BUCKETS)
            return histogram

    def session_histogram(self, session_id: str, manager) -> Optional[Histogram]:
        """The session's ``service.request.seconds`` histogram, cached.

        Returns ``None`` for unknown sessions; the cached handle outlives
        session deletion harmlessly (the orphaned histogram is simply no
        longer exposed).
        """
        histogram = self._session_latency.get(session_id)
        if histogram is None:
            session = manager.peek(session_id)
            if session is None:
                return None
            histogram = session.metrics.histogram("service.request.seconds")
            self._session_latency[session_id] = histogram
        return histogram

    def observe_request(
        self,
        *,
        route: str,
        status: int,
        seconds: float,
        bytes_in: int,
        bytes_out: int,
        trace_id: Optional[str],
        method: str,
        path: str,
        wall_time: float,
        session: Optional[str] = None,
        error: Optional[str] = None,
        atoms: Optional[int] = None,
        faults: Optional[Dict[str, int]] = None,
        degraded: bool = False,
    ) -> None:
        """Fold one completed request into every ledger (no-op when off)."""
        if not self.enabled:
            return
        histogram = self._latency.get(route)
        if histogram is None:
            histogram = self.route_histogram(route)
        histogram.observe(seconds)
        self._bytes_in.observe(bytes_in)
        self._bytes_out.observe(bytes_out)
        slow = seconds >= self.slow_request_seconds
        with self._lock:
            key = (route, status)
            self._requests[key] = self._requests.get(key, 0) + 1
            if status >= 500:
                self.errors += 1
            if slow:
                self.slow_requests += 1
        self.access_log.record((
            wall_time, trace_id, method, route, path, status, seconds,
            bytes_in, bytes_out, session, error, atoms, faults, degraded,
            slow,
        ))

    # -- exposition ----------------------------------------------------
    def render(self, exposition: Exposition) -> None:
        """Add the server-wide series to *exposition* (consistent cut)."""
        with self._lock:
            requests = dict(self._requests)
            latency = dict(self._latency)
            errors = self.errors
            slow = self.slow_requests
        for (route, status), count in sorted(requests.items()):
            exposition.add(
                "requests_total", "counter", count,
                {"route": route, "status": str(status)},
            )
        exposition.add("server_errors_total", "counter", errors)
        exposition.add("slow_requests_total", "counter", slow)
        for route, histogram in sorted(latency.items()):
            exposition.add_histogram(
                "request_seconds", histogram, {"route": route}
            )
        exposition.add_histogram("request_bytes_in", self._bytes_in)
        exposition.add_histogram("request_bytes_out", self._bytes_out)
        if self.trace_ring is not None:
            exposition.add(
                "trace_ring_lines", "gauge", len(self.trace_ring)
            )
            exposition.add(
                "trace_ring_dropped_total", "counter", self.trace_ring.dropped
            )
        exposition.add("access_log_entries", "gauge", len(self.access_log))

    # -- summaries (``repro top``, /server/stats) ----------------------
    def request_counts(self) -> Dict[str, int]:
        """Total completed requests per route (all statuses)."""
        with self._lock:
            totals: Dict[str, int] = {}
            for (route, _status), count in self._requests.items():
                totals[route] = totals.get(route, 0) + count
            return totals
