"""The end-to-end Theorem 1 reduction: rainworm machine → CQfDP instance."""

from .pipeline import ReductionInstance, reduce_machine
from .theorem1 import (
    CreepingEvidence,
    HaltingEvidence,
    creeping_direction_evidence,
    halting_direction_evidence,
)

__all__ = [
    "CreepingEvidence",
    "HaltingEvidence",
    "ReductionInstance",
    "creeping_direction_evidence",
    "halting_direction_evidence",
    "reduce_machine",
]
