"""The end-to-end Theorem 1 / Theorem 5 reduction pipeline.

Starting from a (possibly Turing-machine-compiled) rainworm machine ``∆``,
the pipeline assembles every artefact of the reduction:

    ∆  →  T_M ∪ T□  (green graph rules, Section VIII.C + VII)
       →  Precompile(T_M ∪ T□)  (Level-1 swarm rules, Definition 9)
       →  Q = Compile(Precompile(T_M ∪ T□))  (conjunctive queries over Σ)
       →  the CQfDP instance  (Q, Q0 = ∃* dalt(I))

By Lemma 12, Observation 13 and Lemma 24:

    ∆ creeps forever  ⇔  T_M ∪ T□ finitely leads to the red spider
                      ⇔  Q finitely determines Q0,

which is the undecidability of CQfDP (Theorem 1).  Because the last two
stages blow the instance up considerably (every rule becomes a pair of
spider queries with hundreds of atoms), the conjunctive-query level is built
lazily and only on request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.query import ConjunctiveQuery
from ..engine import EngineSpec
from ..greengraph.graph import GreenGraph, initial_graph
from ..greengraph.precompile import precompile
from ..greengraph.rules import GreenGraphChase, GreenGraphRuleSet
from ..rainworm.machine import RainwormMachine
from ..rainworm.to_rules import machine_rules, reduction_rules
from ..separating.theorem14 import full_green_spider_query
from ..spiders.ideal import SpiderUniverse
from ..swarm.compile import compile_rules, universe_for_rules
from ..swarm.rules import SwarmRuleSet


@dataclass
class ReductionInstance:
    """All artefacts of the reduction for one rainworm machine."""

    machine: RainwormMachine
    machine_rule_set: GreenGraphRuleSet
    full_rule_set: GreenGraphRuleSet
    #: Chase engine used by every chase this instance runs (None = default
    #: semi-naive engine; "reference" selects the reference implementation).
    engine: EngineSpec = None
    _level1: Optional[SwarmRuleSet] = field(default=None, repr=False)
    _universe: Optional[SpiderUniverse] = field(default=None, repr=False)
    _views: Optional[List[ConjunctiveQuery]] = field(default=None, repr=False)
    _query: Optional[ConjunctiveQuery] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def level1_rules(self) -> SwarmRuleSet:
        """``Precompile(T_M ∪ T□)`` (built on first access)."""
        if self._level1 is None:
            self._level1 = precompile(self.full_rule_set)
        return self._level1

    @property
    def universe(self) -> SpiderUniverse:
        """The spider leg universe spanned by the Level-1 rules."""
        if self._universe is None:
            self._universe = universe_for_rules(self.level1_rules.rules)
        return self._universe

    @property
    def views(self) -> List[ConjunctiveQuery]:
        """``Q = Compile(Precompile(T_M ∪ T□))`` (built on first access)."""
        if self._views is None:
            self._views = compile_rules(self.level1_rules, self.universe)
        return self._views

    @property
    def query(self) -> ConjunctiveQuery:
        """``Q0 = ∃* dalt(I)``."""
        if self._query is None:
            self._query = full_green_spider_query(self.universe)
        return self._query

    # ------------------------------------------------------------------
    def chase_machine_rules(
        self,
        graph: Optional[GreenGraph] = None,
        max_stages: Optional[int] = None,
        max_atoms: Optional[int] = None,
        keep_snapshots: bool = True,
    ) -> GreenGraphChase:
        """Chase ``T_M`` from *graph* (default ``DI``) on this instance's engine.

        This is the chase behind the "creeping ⇒ the slime trail keeps
        growing" direction of Lemma 24; Theorem-1 evidence gathering calls it
        instead of wiring up an engine of its own.
        """
        return self.machine_rule_set.chase(
            graph if graph is not None else initial_graph(),
            max_stages=max_stages,
            max_atoms=max_atoms,
            keep_snapshots=keep_snapshots,
            engine=self.engine,
        )

    def chase_full_rules(
        self,
        graph: Optional[GreenGraph] = None,
        max_stages: Optional[int] = None,
        max_atoms: Optional[int] = None,
        keep_snapshots: bool = True,
    ) -> GreenGraphChase:
        """Chase ``T_M ∪ T□`` from *graph* (default ``DI``) on this engine."""
        return self.full_rule_set.chase(
            graph if graph is not None else initial_graph(),
            max_stages=max_stages,
            max_atoms=max_atoms,
            keep_snapshots=keep_snapshots,
            engine=self.engine,
        )

    # ------------------------------------------------------------------
    def sizes(self) -> dict:
        """Instance-size statistics (reported by the benchmarks)."""
        return {
            "instructions": self.machine.instruction_count(),
            "machine_rules": len(self.machine_rule_set),
            "green_graph_rules": len(self.full_rule_set),
            "level1_rules": len(self.level1_rules),
            "views": len(self.views),
            "view_atoms": sum(len(view.atoms) for view in self.views),
            "query_atoms": len(self.query.atoms),
            "universe_legs": self.universe.size,
        }


def reduce_machine(
    machine: RainwormMachine,
    include_grid: bool = True,
    engine: EngineSpec = None,
) -> ReductionInstance:
    """Build the reduction instance for *machine*.

    *engine* selects the chase engine every downstream chase of this
    instance runs on (default: the semi-naive engine of :mod:`repro.engine`).
    """
    machine_set = machine_rules(machine)
    full_set = reduction_rules(machine) if include_grid else machine_set
    return ReductionInstance(
        machine=machine,
        machine_rule_set=machine_set,
        full_rule_set=full_set,
        engine=engine,
    )
