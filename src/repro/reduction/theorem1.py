"""Bounded empirical evidence for both directions of Lemma 24 (hence Theorem 1).

Undecidability cannot be "run", but for *concrete* machines both directions
of the reduction can be exercised:

* **halting machine ⇒ no finite leading** — the Section VIII.E construction
  produces a finite green graph satisfying ``T_M``, whose grid closure stays
  1-2-pattern free; equivalently ``Q`` does *not* finitely determine ``Q0``;
* **forever-creeping machine ⇒ finite leading** — the chase of ``T_M`` keeps
  extending the αβ-slime-trail (Lemma 25), and folding any two trail
  vertices together (which every finite model must do) makes ``T□`` produce
  a 1-2 pattern; equivalently ``Q`` finitely determines ``Q0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..greengraph.graph import initial_graph
from ..greengraph.parity import words
from ..rainworm.configuration import word_names
from ..rainworm.countermodel import CountermodelReport, build_countermodel
from ..rainworm.machine import RainwormMachine
from ..rainworm.simulator import run
from ..separating.grid import build_grid_on_merged_paths
from .pipeline import ReductionInstance, reduce_machine


@dataclass
class HaltingEvidence:
    """Evidence gathered for a halting machine (the "⇐" direction)."""

    instance: ReductionInstance
    countermodel: CountermodelReport

    @property
    def supports_lemma24(self) -> bool:
        """The finite counter-model checks all passed."""
        return self.countermodel.is_valid


@dataclass
class CreepingEvidence:
    """Evidence gathered for a (boundedly) non-halting machine (the "⇒" direction)."""

    instance: ReductionInstance
    steps_simulated: int
    words_observed: int
    configurations_found_as_words: int
    configurations_checked: int
    merged_paths_pattern: bool

    @property
    def supports_lemma24(self) -> bool:
        """Lemma 25 held on the explored prefix and folding produced the pattern."""
        return (
            self.configurations_found_as_words == self.configurations_checked
            and self.merged_paths_pattern
        )


def halting_direction_evidence(
    machine: RainwormMachine,
    max_steps: int = 500,
    grid_stages: int = 8,
    engine=None,
) -> HaltingEvidence:
    """Run the Section VIII.E construction for a halting machine."""
    instance = reduce_machine(machine, engine=engine)
    report = build_countermodel(
        machine,
        max_steps=max_steps,
        add_grids=True,
        grid_stages=grid_stages,
        engine=engine,
    )
    return HaltingEvidence(instance=instance, countermodel=report)


def creeping_direction_evidence(
    machine: RainwormMachine,
    simulate_steps: int = 8,
    chase_stages: int = 10,
    max_atoms: int = 40_000,
    merged_lengths: Tuple[int, int] = (3, 2),
    engine=None,
) -> CreepingEvidence:
    """Check Lemma 25 on a chase prefix and the folding argument for a creeping machine."""
    instance = reduce_machine(machine, engine=engine)
    trace = run(machine, simulate_steps).trace
    reachable = {word_names(configuration) for configuration in trace}
    chase = instance.chase_machine_rules(
        initial_graph(), max_stages=chase_stages, max_atoms=max_atoms
    )
    observed = words(chase.graph(), max_length=4 * simulate_steps + 8)
    found = sum(1 for configuration in reachable if configuration in observed)
    merged = build_grid_on_merged_paths(*merged_lengths)
    return CreepingEvidence(
        instance=instance,
        steps_simulated=len(trace) - 1,
        words_observed=len(observed),
        configurations_found_as_words=found,
        configurations_checked=len(reachable),
        merged_paths_pattern=merged.has_pattern,
    )
