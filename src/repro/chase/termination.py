"""Chase termination analysis.

The chase may run forever; the paper exploits exactly this (the infinite
``chase(T∞, DI)`` of Figure 1).  For the library it is still useful to have

* a syntactic sufficient condition for termination — *weak acyclicity*
  (Fagin et al.), based on the position dependency graph; and
* an empirical bounded-run check used by tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..core.structure import Structure
from .chase import chase
from .tgd import TGD

Position = Tuple[str, int]
"""A position is a pair (predicate name, argument index)."""


@dataclass(frozen=True)
class DependencyGraph:
    """The position dependency graph of a set of TGDs.

    Nodes are positions.  For every TGD, every body occurrence of a frontier
    variable at position ``p`` and every head occurrence of the same variable
    at position ``q`` contribute a *regular* edge ``p → q``; every head
    occurrence of an existential variable at position ``q`` contributes a
    *special* edge ``p ⇒ q`` from every body position ``p`` of every frontier
    variable of that TGD.
    """

    regular_edges: FrozenSet[Tuple[Position, Position]]
    special_edges: FrozenSet[Tuple[Position, Position]]

    def nodes(self) -> FrozenSet[Position]:
        """All positions mentioned by any edge."""
        result: Set[Position] = set()
        for src, dst in self.regular_edges | self.special_edges:
            result.add(src)
            result.add(dst)
        return frozenset(result)

    def has_cycle_through_special_edge(self) -> bool:
        """True when some cycle of the graph uses a special edge."""
        nodes = list(self.nodes())
        all_edges = list(self.regular_edges) + list(self.special_edges)
        adjacency: Dict[Position, List[Position]] = {node: [] for node in nodes}
        for src, dst in all_edges:
            adjacency[src].append(dst)

        def reachable(start: Position) -> Set[Position]:
            seen: Set[Position] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                for nxt in adjacency.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            return seen

        for src, dst in self.special_edges:
            if src in reachable(dst) or src == dst:
                return True
        return False


def build_dependency_graph(tgds: Sequence[TGD]) -> DependencyGraph:
    """Construct the position dependency graph of *tgds*."""
    regular: Set[Tuple[Position, Position]] = set()
    special: Set[Tuple[Position, Position]] = set()
    for tgd in tgds:
        frontier = tgd.frontier()
        existential = tgd.existential_variables()
        body_positions: Dict[object, Set[Position]] = {}
        for atom in tgd.body:
            for index, arg in enumerate(atom.args):
                if arg in frontier:
                    body_positions.setdefault(arg, set()).add((atom.predicate, index))
        for atom in tgd.head:
            for index, arg in enumerate(atom.args):
                position = (atom.predicate, index)
                if arg in frontier:
                    for src in body_positions.get(arg, ()):
                        regular.add((src, position))
                elif arg in existential:
                    for sources in body_positions.values():
                        for src in sources:
                            special.add((src, position))
    return DependencyGraph(frozenset(regular), frozenset(special))


def is_weakly_acyclic(tgds: Sequence[TGD]) -> bool:
    """Sufficient condition for chase termination on every instance."""
    graph = build_dependency_graph(tgds)
    return not graph.has_cycle_through_special_edge()


@dataclass(frozen=True)
class BoundedRunReport:
    """Outcome of an empirical bounded chase run."""

    reached_fixpoint: bool
    stages_run: int
    atoms_final: int
    atoms_per_stage: Tuple[int, ...]


def bounded_run_report(
    tgds: Sequence[TGD],
    instance: Structure,
    max_stages: int,
    max_atoms: int = 100_000,
) -> BoundedRunReport:
    """Run the chase with bounds and report growth per stage."""
    result = chase(tgds, instance, max_stages=max_stages, max_atoms=max_atoms)
    sizes = tuple(len(s.atoms()) for s in result.stage_snapshots)
    return BoundedRunReport(
        reached_fixpoint=result.reached_fixpoint,
        stages_run=result.stages_run,
        atoms_final=len(result.structure.atoms()),
        atoms_per_stage=sizes,
    )


def terminates_within(
    tgds: Sequence[TGD], instance: Structure, max_stages: int
) -> bool:
    """Empirical check: does the chase reach a fixpoint within *max_stages*?"""
    return chase(tgds, instance, max_stages=max_stages, keep_snapshots=False).reached_fixpoint
