"""Chase provenance: which rule created which atom, and when.

The paper repeatedly reasons about *stages* of the chase (``chase_i``), about
atoms "added at some stage j with i ≤ j ≤ 2i" (the late chase of Section
IX.B), and about which rule applications produced which edges (the grid
constructions).  Recording provenance during the chase makes all of those
notions first-class values rather than pencil-and-paper bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..core.atoms import Atom
from .trigger import Trigger


@dataclass(frozen=True)
class ChaseStep:
    """A single trigger firing."""

    stage: int
    trigger: Trigger
    new_atoms: Tuple[Atom, ...]
    new_elements: Tuple[object, ...]

    @property
    def rule_name(self) -> str:
        """Name of the TGD that fired."""
        return self.trigger.tgd.name


@dataclass
class ChaseProvenance:
    """The full record of a chase run."""

    steps: List[ChaseStep] = field(default_factory=list)

    # ------------------------------------------------------------------
    def record(self, step: ChaseStep) -> None:
        """Append a step to the record."""
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    # ------------------------------------------------------------------
    def atoms_created_at_stage(self, stage: int) -> FrozenSet[Atom]:
        """All atoms first created during *stage*."""
        atoms = set()
        for step in self.steps:
            if step.stage == stage:
                atoms.update(step.new_atoms)
        return frozenset(atoms)

    def atoms_created_in_stages(self, stages: Iterable[int]) -> FrozenSet[Atom]:
        """All atoms first created during any of *stages*."""
        wanted = set(stages)
        atoms = set()
        for step in self.steps:
            if step.stage in wanted:
                atoms.update(step.new_atoms)
        return frozenset(atoms)

    def creation_stage(self) -> Dict[Atom, int]:
        """Map each created atom to the stage at which it first appeared."""
        result: Dict[Atom, int] = {}
        for step in self.steps:
            for atom in step.new_atoms:
                result.setdefault(atom, step.stage)
        return result

    def creating_rule(self) -> Dict[Atom, str]:
        """Map each created atom to the name of the rule that created it."""
        result: Dict[Atom, str] = {}
        for step in self.steps:
            for atom in step.new_atoms:
                result.setdefault(atom, step.rule_name)
        return result

    def rule_firing_counts(self) -> Dict[str, int]:
        """How many times each rule fired."""
        counts: Dict[str, int] = {}
        for step in self.steps:
            counts[step.rule_name] = counts.get(step.rule_name, 0) + 1
        return counts

    def elements_created_at_stage(self, stage: int) -> FrozenSet[object]:
        """All fresh elements (labelled nulls) created during *stage*."""
        elements = set()
        for step in self.steps:
            if step.stage == stage:
                elements.update(step.new_elements)
        return frozenset(elements)

    def last_stage(self) -> Optional[int]:
        """The largest stage number that fired anything, or ``None``."""
        if not self.steps:
            return None
        return max(step.stage for step in self.steps)
