"""Tuple Generating Dependencies (TGDs).

A TGD (Section II.B of the paper) is a formula

    ∀x̄, ȳ [ Φ(x̄, ȳ) ⇒ ∃z̄ Ψ(z̄, ȳ) ]

where Φ (the *body*) and Ψ (the *head*) are conjunctions of atoms.  The
variables ȳ shared between body and head are the *frontier*; they are the
interface between the "new" part of a structure added by an application of
the TGD and the "old" structure (the paper stresses exactly this point).

TGDs are deliberately kept dumb data objects; how they *act on a structure*
is the business of :mod:`repro.chase.trigger` and :mod:`repro.chase.chase`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from ..core.atoms import Atom
from ..core.builders import _split_atoms, parse_atom
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable


class TGDError(ValueError):
    """Raised for malformed tuple generating dependencies."""


@dataclass(frozen=True)
class TGD:
    """A single tuple generating dependency ``body ⇒ ∃ head``."""

    name: str
    body: Tuple[Atom, ...]
    head: Tuple[Atom, ...]

    def __init__(self, name: str, body: Iterable[Atom], head: Iterable[Atom]) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "head", tuple(head))
        if not self.body:
            raise TGDError("a TGD needs a non-empty body")
        if not self.head:
            raise TGDError("a TGD needs a non-empty head")

    # ------------------------------------------------------------------
    # Variable classification
    # ------------------------------------------------------------------
    def body_variables(self) -> FrozenSet[Variable]:
        """All variables of the body (x̄ ∪ ȳ)."""
        result = set()
        for atom in self.body:
            result.update(atom.variables())
        return frozenset(result)

    def head_variables(self) -> FrozenSet[Variable]:
        """All variables of the head (ȳ ∪ z̄)."""
        result = set()
        for atom in self.head:
            result.update(atom.variables())
        return frozenset(result)

    def frontier(self) -> FrozenSet[Variable]:
        """The frontier ȳ: variables shared between body and head."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> FrozenSet[Variable]:
        """The existential head variables z̄."""
        return self.head_variables() - self.body_variables()

    def constants(self) -> FrozenSet[Constant]:
        """All constants mentioned by the dependency."""
        result = set()
        for atom in self.body + self.head:
            result.update(atom.constants())
        return frozenset(result)

    def predicates(self) -> FrozenSet[str]:
        """All predicate names mentioned by the dependency."""
        return frozenset(atom.predicate for atom in self.body + self.head)

    def is_full(self) -> bool:
        """True when the TGD has no existential variables (a "full" TGD)."""
        return not self.existential_variables()

    # ------------------------------------------------------------------
    # Views of the two sides as conjunctive queries
    # ------------------------------------------------------------------
    def body_query(self) -> ConjunctiveQuery:
        """The body as a CQ with the frontier as free variables."""
        frontier = sorted(self.frontier(), key=lambda v: v.name)
        return ConjunctiveQuery(f"{self.name}::body", frontier, self.body)

    def head_query(self) -> ConjunctiveQuery:
        """The head as a CQ with the frontier as free variables."""
        frontier = sorted(self.frontier(), key=lambda v: v.name)
        return ConjunctiveQuery(f"{self.name}::head", frontier, self.head)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(repr(a) for a in self.body)
        head = ", ".join(repr(a) for a in self.head)
        return f"[{self.name}] {body} -> {head}"

    # ------------------------------------------------------------------
    @staticmethod
    def parse(text: str, name: str = "") -> "TGD":
        """Parse ``"R(x,y), S(y,z) -> T(x,w), U(w,#a)"`` into a TGD."""
        if "->" not in text:
            raise TGDError("a TGD needs a '->' separating body and head")
        body_text, head_text = text.split("->", 1)
        body = [parse_atom(p, as_query_atom=True) for p in _split_atoms(body_text)]
        head = [parse_atom(p, as_query_atom=True) for p in _split_atoms(head_text)]
        return TGD(name or "tgd", body, head)


def parse_tgds(*texts: str, prefix: str = "tgd") -> List[TGD]:
    """Parse several TGDs, naming them ``prefix0, prefix1, …``."""
    return [TGD.parse(text, name=f"{prefix}{i}") for i, text in enumerate(texts)]


def rename_tgd_predicates(tgd: TGD, renaming) -> TGD:
    """Apply a predicate renaming to both sides of a TGD."""
    return TGD(
        tgd.name,
        tuple(atom.rename_predicate(renaming) for atom in tgd.body),
        tuple(atom.rename_predicate(renaming) for atom in tgd.head),
    )


def standardise_apart(tgds: Sequence[TGD]) -> List[TGD]:
    """Rename variables so that distinct TGDs share no variable names.

    Not required for correctness of the chase (each TGD is matched
    independently) but convenient when sets of TGDs are merged, printed or
    compared.
    """
    result: List[TGD] = []
    for index, tgd in enumerate(tgds):
        mapping = {
            var: Variable(f"{var.name}__{index}")
            for var in (tgd.body_variables() | tgd.head_variables())
        }
        result.append(
            TGD(
                tgd.name,
                tuple(atom.substitute(mapping) for atom in tgd.body),
                tuple(atom.substitute(mapping) for atom in tgd.head),
            )
        )
    return result
