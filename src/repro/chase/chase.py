"""The lazy (standard) chase, with stages and provenance.

Section II.C of the paper defines the chase stage by stage:

    chase_0(T, D) = D
    chase_{i+1}(T, D): for all pairs (T, b̄) with T ∈ T and b̄ a tuple of
        elements of chase_i(T, D): if conditions (¬) and (­) hold in the
        current D for b̄ and T, then D := D(T, b̄)
    chase(T, D) = ⋃_i chase_i(T, D)

The chase here is "lazy": new atoms and elements are only produced when the
head is not already satisfied.  We keep exactly this stage discipline (body
matches are found in the structure as it was at the start of the stage, head
satisfaction is re-checked against the current, growing structure) because
several constructions in the paper — Figure 1, the late chase of Section IX,
the counter-model procedure of Section VIII.E — depend on the stage numbers.

``chase`` as a whole may of course be infinite; callers always supply a bound
(number of stages and/or number of atoms), and the result records whether a
fixpoint was reached within the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.structure import Structure
from ..core.terms import FreshNullFactory
from .provenance import ChaseProvenance, ChaseStep
from .tgd import TGD
from .trigger import (
    Trigger,
    apply_trigger,
    find_triggers,
    head_satisfied,
    trigger_sort_key,
)


class ChaseExecutionError(RuntimeError):
    """A chase run could not complete for an *operational* reason.

    The typed failure of the execution substrate — worker processes dying,
    replicas desyncing, deadlines expiring with recovery disabled — as
    opposed to the *semantic* :class:`ChaseBudgetExceeded`.  The contract of
    the fault-tolerant parallel engine (:mod:`repro.engine.resilience`) is
    that every run either completes bit-identical to a serial run or raises
    a ``ChaseExecutionError`` subclass, never a bare transport exception.
    """


class ChaseBudgetExceeded(RuntimeError):
    """Raised when a chase run exceeds its atom budget (when asked to raise)."""


@dataclass
class ChaseResult:
    """Outcome of a (bounded) chase run."""

    structure: Structure
    reached_fixpoint: bool
    stages_run: int
    stage_snapshots: List[Structure] = field(default_factory=list)
    provenance: ChaseProvenance = field(default_factory=ChaseProvenance)
    #: Per-run accounting (:class:`repro.obs.report.ChaseRunStats`) attached
    #: by engines that collect it; ``None`` for the reference engine.
    stats: Optional[object] = None

    # ------------------------------------------------------------------
    @property
    def terminated(self) -> bool:
        """Alias for :attr:`reached_fixpoint` (the chase terminated on its own)."""
        return self.reached_fixpoint

    def stage(self, index: int) -> Structure:
        """The snapshot ``chase_index(T, D)`` (stage 0 is the input)."""
        return self.stage_snapshots[index]

    def final(self) -> Structure:
        """The last computed stage."""
        return self.structure

    def atoms_added(self) -> int:
        """Total number of atoms added over the whole run."""
        return len(self.structure.atoms()) - len(self.stage_snapshots[0].atoms())

    def new_atoms_at_stage(self, index: int) -> frozenset:
        """Atoms of ``chase_index`` that are not in ``chase_{index-1}``."""
        if index == 0:
            return self.stage_snapshots[0].atoms()
        return self.stage_snapshots[index].atoms() - self.stage_snapshots[index - 1].atoms()


@dataclass
class ChaseEngine:
    """A configurable chase runner.

    Parameters
    ----------
    tgds:
        The dependency set ``T``.
    max_stages:
        Upper bound on the number of stages to run (``None`` = unbounded;
        use only with terminating dependency sets).
    max_atoms:
        Safety budget on the total number of atoms; the run stops (or raises,
        see ``raise_on_budget``) when exceeded.
    keep_snapshots:
        Whether to keep a copy of every stage (needed by the late-chase and
        Figure-1 style constructions; turn off for large benchmark runs).
    """

    tgds: Sequence[TGD]
    max_stages: Optional[int] = None
    max_atoms: Optional[int] = None
    keep_snapshots: bool = True
    raise_on_budget: bool = False

    # ------------------------------------------------------------------
    def run(self, instance: Structure) -> ChaseResult:
        """Run the chase from *instance* (which is not modified)."""
        current = instance.copy(name=f"chase({instance.name})" if instance.name else "chase")
        null_factory = FreshNullFactory()
        provenance = ChaseProvenance()
        snapshots: List[Structure] = [current.copy(name="chase_0")] if self.keep_snapshots else [instance.copy(name="chase_0")]
        stage = 0
        reached_fixpoint = False
        while self.max_stages is None or stage < self.max_stages:
            stage += 1
            fired = self._run_stage(current, null_factory, provenance, stage)
            if self.keep_snapshots:
                snapshots.append(current.copy(name=f"chase_{stage}"))
            if not fired:
                reached_fixpoint = True
                stage -= 1  # the last stage added nothing: not counted
                if self.keep_snapshots:
                    snapshots.pop()
                break
            if self.max_atoms is not None and len(current) > self.max_atoms:
                if self.raise_on_budget:
                    raise ChaseBudgetExceeded(
                        f"chase exceeded the atom budget of {self.max_atoms}"
                    )
                break
        return ChaseResult(
            structure=current,
            reached_fixpoint=reached_fixpoint,
            stages_run=stage,
            stage_snapshots=snapshots,
            provenance=provenance,
        )

    # ------------------------------------------------------------------
    def iter_stages(self, instance: Structure) -> Iterator[Structure]:
        """Yield the chase stages lazily (stage 0 first), as they are computed.

        Unlike :meth:`run`, which computes the whole bounded chase before
        returning, this generator performs one stage per ``next()`` call, so a
        caller can stop early (e.g. as soon as a pattern appears) without
        paying for the rest of the run.  Each yielded structure is a private
        copy.  Budget semantics mirror :meth:`run`: with ``raise_on_budget``
        the :class:`ChaseBudgetExceeded` is raised as soon as the offending
        stage has been computed (before it is yielded); otherwise the
        over-budget stage is the last one yielded.
        """
        current = instance.copy(
            name=f"chase({instance.name})" if instance.name else "chase"
        )
        null_factory = FreshNullFactory()
        yield current.copy(name="chase_0")
        stage = 0
        while self.max_stages is None or stage < self.max_stages:
            stage += 1
            # No provenance: the generator exposes only the snapshots, and a
            # long iteration must not accumulate an unreachable step record.
            fired = self._run_stage(current, null_factory, None, stage)
            if not fired:
                return
            over_budget = self.max_atoms is not None and len(current) > self.max_atoms
            if over_budget and self.raise_on_budget:
                raise ChaseBudgetExceeded(
                    f"chase exceeded the atom budget of {self.max_atoms}"
                )
            yield current.copy(name=f"chase_{stage}")
            if over_budget:
                return

    # ------------------------------------------------------------------
    def _run_stage(
        self,
        current: Structure,
        null_factory: FreshNullFactory,
        provenance: Optional[ChaseProvenance],
        stage: int,
    ) -> bool:
        """Run one stage; return ``True`` when at least one trigger fired."""
        frozen_start = current.copy()
        fired_any = False
        for tgd in self.tgds:
            # Body matches are looked for in the structure as it was at the
            # start of the stage (the paper's "b̄ ranges over elements of
            # chase_i"), head satisfaction is re-checked in the growing D.
            # Triggers fire in canonical order so that runs are reproducible
            # and the semi-naive engine (repro.engine) can match them exactly.
            triggers = sorted(
                find_triggers(
                    tgd, frozen_start, active_only=False, satisfaction_structure=current
                ),
                key=lambda t: trigger_sort_key(t.frontier_image),
            )
            for trigger in triggers:
                if head_satisfied(tgd, current, trigger.frontier_assignment):
                    continue
                outcome = apply_trigger(trigger, current, null_factory)
                if not outcome.new_atoms:
                    continue
                fired_any = True
                if provenance is not None:
                    provenance.record(
                        ChaseStep(
                            stage=stage,
                            trigger=trigger,
                            new_atoms=outcome.new_atoms,
                            new_elements=outcome.new_elements,
                        )
                    )
        return fired_any


# ----------------------------------------------------------------------
# Functional interface
# ----------------------------------------------------------------------
def chase(
    tgds: Sequence[TGD],
    instance: Structure,
    max_stages: Optional[int] = None,
    max_atoms: Optional[int] = None,
    keep_snapshots: bool = True,
) -> ChaseResult:
    """Run the lazy chase of *instance* under *tgds* with the given bounds."""
    engine = ChaseEngine(
        tgds=list(tgds),
        max_stages=max_stages,
        max_atoms=max_atoms,
        keep_snapshots=keep_snapshots,
    )
    return engine.run(instance)


def chase_i(tgds: Sequence[TGD], instance: Structure, stages: int) -> Structure:
    """The structure ``chase_stages(T, D)`` — exactly *stages* chase stages."""
    result = chase(tgds, instance, max_stages=stages)
    return result.final()


def chase_stages(
    tgds: Sequence[TGD], instance: Structure, stages: int
) -> List[Structure]:
    """The list ``[chase_0, chase_1, …, chase_stages]`` (shorter if a fixpoint hits)."""
    result = chase(tgds, instance, max_stages=stages)
    return result.stage_snapshots


def chase_fixpoint(
    tgds: Sequence[TGD],
    instance: Structure,
    max_stages: int = 1000,
    max_atoms: Optional[int] = None,
) -> ChaseResult:
    """Chase until a fixpoint, failing loudly when the bound is hit first."""
    result = chase(tgds, instance, max_stages=max_stages, max_atoms=max_atoms)
    if not result.reached_fixpoint:
        raise ChaseBudgetExceeded(
            f"no fixpoint within {max_stages} stages / {max_atoms} atoms"
        )
    return result


def iterate_chase(
    tgds: Sequence[TGD], instance: Structure, max_stages: int
) -> Iterator[Structure]:
    """Yield chase stages one by one (stage 0 first), up to *max_stages*.

    A true generator: each stage is computed only when the caller asks for
    it, so breaking out of the loop early skips the remaining stages.
    """
    engine = ChaseEngine(tgds=list(tgds), max_stages=max_stages)
    return engine.iter_stages(instance)
