"""The lazy (standard) chase, with stages and provenance.

Section II.C of the paper defines the chase stage by stage:

    chase_0(T, D) = D
    chase_{i+1}(T, D): for all pairs (T, b̄) with T ∈ T and b̄ a tuple of
        elements of chase_i(T, D): if conditions (¬) and (­) hold in the
        current D for b̄ and T, then D := D(T, b̄)
    chase(T, D) = ⋃_i chase_i(T, D)

The chase here is "lazy": new atoms and elements are only produced when the
head is not already satisfied.  We keep exactly this stage discipline (body
matches are found in the structure as it was at the start of the stage, head
satisfaction is re-checked against the current, growing structure) because
several constructions in the paper — Figure 1, the late chase of Section IX,
the counter-model procedure of Section VIII.E — depend on the stage numbers.

``chase`` as a whole may of course be infinite; callers always supply a bound
(number of stages and/or number of atoms), and the result records whether a
fixpoint was reached within the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.structure import Structure
from ..core.terms import FreshNullFactory
from .provenance import ChaseProvenance, ChaseStep
from .tgd import TGD
from .trigger import Trigger, find_triggers, fire_trigger, head_satisfied


class ChaseBudgetExceeded(RuntimeError):
    """Raised when a chase run exceeds its atom budget (when asked to raise)."""


@dataclass
class ChaseResult:
    """Outcome of a (bounded) chase run."""

    structure: Structure
    reached_fixpoint: bool
    stages_run: int
    stage_snapshots: List[Structure] = field(default_factory=list)
    provenance: ChaseProvenance = field(default_factory=ChaseProvenance)

    # ------------------------------------------------------------------
    @property
    def terminated(self) -> bool:
        """Alias for :attr:`reached_fixpoint` (the chase terminated on its own)."""
        return self.reached_fixpoint

    def stage(self, index: int) -> Structure:
        """The snapshot ``chase_index(T, D)`` (stage 0 is the input)."""
        return self.stage_snapshots[index]

    def final(self) -> Structure:
        """The last computed stage."""
        return self.structure

    def atoms_added(self) -> int:
        """Total number of atoms added over the whole run."""
        return len(self.structure.atoms()) - len(self.stage_snapshots[0].atoms())

    def new_atoms_at_stage(self, index: int) -> frozenset:
        """Atoms of ``chase_index`` that are not in ``chase_{index-1}``."""
        if index == 0:
            return self.stage_snapshots[0].atoms()
        return self.stage_snapshots[index].atoms() - self.stage_snapshots[index - 1].atoms()


@dataclass
class ChaseEngine:
    """A configurable chase runner.

    Parameters
    ----------
    tgds:
        The dependency set ``T``.
    max_stages:
        Upper bound on the number of stages to run (``None`` = unbounded;
        use only with terminating dependency sets).
    max_atoms:
        Safety budget on the total number of atoms; the run stops (or raises,
        see ``raise_on_budget``) when exceeded.
    keep_snapshots:
        Whether to keep a copy of every stage (needed by the late-chase and
        Figure-1 style constructions; turn off for large benchmark runs).
    """

    tgds: Sequence[TGD]
    max_stages: Optional[int] = None
    max_atoms: Optional[int] = None
    keep_snapshots: bool = True
    raise_on_budget: bool = False

    # ------------------------------------------------------------------
    def run(self, instance: Structure) -> ChaseResult:
        """Run the chase from *instance* (which is not modified)."""
        current = instance.copy(name=f"chase({instance.name})" if instance.name else "chase")
        null_factory = FreshNullFactory()
        provenance = ChaseProvenance()
        snapshots: List[Structure] = [current.copy(name="chase_0")] if self.keep_snapshots else [instance.copy(name="chase_0")]
        stage = 0
        reached_fixpoint = False
        while self.max_stages is None or stage < self.max_stages:
            stage += 1
            fired = self._run_stage(current, null_factory, provenance, stage)
            if self.keep_snapshots:
                snapshots.append(current.copy(name=f"chase_{stage}"))
            if not fired:
                reached_fixpoint = True
                stage -= 1  # the last stage added nothing: not counted
                if self.keep_snapshots:
                    snapshots.pop()
                break
            if self.max_atoms is not None and len(current.atoms()) > self.max_atoms:
                if self.raise_on_budget:
                    raise ChaseBudgetExceeded(
                        f"chase exceeded the atom budget of {self.max_atoms}"
                    )
                break
        return ChaseResult(
            structure=current,
            reached_fixpoint=reached_fixpoint,
            stages_run=stage,
            stage_snapshots=snapshots,
            provenance=provenance,
        )

    # ------------------------------------------------------------------
    def _run_stage(
        self,
        current: Structure,
        null_factory: FreshNullFactory,
        provenance: ChaseProvenance,
        stage: int,
    ) -> bool:
        """Run one stage; return ``True`` when at least one trigger fired."""
        frozen_start = current.copy()
        fired_any = False
        for tgd in self.tgds:
            # Body matches are looked for in the structure as it was at the
            # start of the stage (the paper's "b̄ ranges over elements of
            # chase_i"), head satisfaction is re-checked in the growing D.
            for trigger in find_triggers(
                tgd, frozen_start, active_only=False, satisfaction_structure=current
            ):
                if head_satisfied(tgd, current, trigger.frontier_assignment):
                    continue
                before_elements = current.domain()
                new_atoms, fresh = fire_trigger(trigger, current, null_factory)
                if not new_atoms:
                    continue
                fired_any = True
                new_elements = tuple(
                    element
                    for element in current.domain() - before_elements
                )
                provenance.record(
                    ChaseStep(
                        stage=stage,
                        trigger=trigger,
                        new_atoms=tuple(new_atoms),
                        new_elements=new_elements,
                    )
                )
        return fired_any


# ----------------------------------------------------------------------
# Functional interface
# ----------------------------------------------------------------------
def chase(
    tgds: Sequence[TGD],
    instance: Structure,
    max_stages: Optional[int] = None,
    max_atoms: Optional[int] = None,
    keep_snapshots: bool = True,
) -> ChaseResult:
    """Run the lazy chase of *instance* under *tgds* with the given bounds."""
    engine = ChaseEngine(
        tgds=list(tgds),
        max_stages=max_stages,
        max_atoms=max_atoms,
        keep_snapshots=keep_snapshots,
    )
    return engine.run(instance)


def chase_i(tgds: Sequence[TGD], instance: Structure, stages: int) -> Structure:
    """The structure ``chase_stages(T, D)`` — exactly *stages* chase stages."""
    result = chase(tgds, instance, max_stages=stages)
    return result.final()


def chase_stages(
    tgds: Sequence[TGD], instance: Structure, stages: int
) -> List[Structure]:
    """The list ``[chase_0, chase_1, …, chase_stages]`` (shorter if a fixpoint hits)."""
    result = chase(tgds, instance, max_stages=stages)
    return result.stage_snapshots


def chase_fixpoint(
    tgds: Sequence[TGD],
    instance: Structure,
    max_stages: int = 1000,
    max_atoms: Optional[int] = None,
) -> ChaseResult:
    """Chase until a fixpoint, failing loudly when the bound is hit first."""
    result = chase(tgds, instance, max_stages=max_stages, max_atoms=max_atoms)
    if not result.reached_fixpoint:
        raise ChaseBudgetExceeded(
            f"no fixpoint within {max_stages} stages / {max_atoms} atoms"
        )
    return result


def iterate_chase(
    tgds: Sequence[TGD], instance: Structure, max_stages: int
) -> Iterator[Structure]:
    """Yield chase stages one by one (stage 0 first), up to *max_stages*."""
    engine = ChaseEngine(tgds=list(tgds), max_stages=max_stages)
    result = engine.run(instance)
    yield from result.stage_snapshots
