"""Triggers: matches of TGD bodies in a structure.

The paper (Section II.B) describes a TGD ``T = Φ(x̄, ȳ) ⇒ ∃z̄ Ψ(z̄, ȳ)`` as a
procedure: find a tuple ``b̄`` such that

* (¬)  ``D |= ∃x̄ Φ(x̄, b̄)`` via a homomorphism ``h``, but
* (­)  ``D ⊭ ∃z̄ Ψ(z̄, b̄)``;

then output ``D(T, b̄)``, the union of ``D`` with a fresh copy of ``A[Ψ]``
whose frontier variables are identified with ``h(ȳ)``.

A :class:`Trigger` packages a TGD together with such a homomorphism.  A
trigger is *active* when condition (­) holds, i.e. the head is not yet
satisfied at the frontier image — this is what makes the chase "lazy"
(standard/restricted chase in modern terminology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..core.atoms import Atom
from ..core.structure import Structure
from ..core.terms import FreshNullFactory, LabeledNull
from .tgd import TGD


@dataclass(frozen=True)
class Trigger:
    """A match of a TGD body in a structure.

    ``assignment`` maps every body variable (and constant) to an element of
    the structure; ``frontier_image`` is its restriction to the frontier,
    which is all that matters for head satisfaction and for firing.
    """

    tgd: TGD
    frontier_image: Tuple[Tuple[object, object], ...]

    @property
    def frontier_assignment(self) -> Dict[object, object]:
        """The frontier binding as a dictionary."""
        return dict(self.frontier_image)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        binding = ", ".join(f"{k}={v}" for k, v in self.frontier_image)
        return f"<Trigger {self.tgd.name}: {binding}>"


def _frontier_key(tgd: TGD, assignment: Mapping[object, object]) -> Tuple[Tuple[object, object], ...]:
    frontier = sorted(tgd.frontier(), key=lambda v: v.name)
    return tuple((var, assignment[var]) for var in frontier)


def frontier_key(tgd: TGD, assignment: Mapping[object, object]) -> Tuple[Tuple[object, object], ...]:
    """The canonical frontier binding of *assignment* (public alias)."""
    return _frontier_key(tgd, assignment)


def trigger_sort_key(frontier_image: Tuple[Tuple[object, object], ...]) -> str:
    """A canonical, hash-seed-independent ordering key for triggers.

    Both the reference :class:`~repro.chase.chase.ChaseEngine` and the
    semi-naive engine of :mod:`repro.engine` fire the triggers of a TGD in
    ascending order of this key, which makes chase runs reproducible across
    processes (set iteration order is not) and makes the two engines produce
    bit-identical structures, null names and provenance.
    """
    return repr(frontier_image)


def head_satisfied(
    tgd: TGD, structure: Structure, frontier_assignment: Mapping[object, object]
) -> bool:
    """Condition (­) negated: is ``∃z̄ Ψ(z̄, b̄)`` already true in *structure*?"""
    # Routed through the planned index-backed evaluator (repro.query): the
    # structure's index is built once and maintained incrementally, so
    # repeated satisfaction checks against the same structure stop paying
    # for per-call candidate materialisation.  Imported lazily to keep the
    # chase → query edge acyclic.
    from ..query.evaluator import iter_homomorphisms

    return (
        next(
            iter_homomorphisms(
                list(tgd.head), structure, fix=dict(frontier_assignment), limit=1
            ),
            None,
        )
        is not None
    )


def find_triggers(
    tgd: TGD,
    structure: Structure,
    active_only: bool = True,
    satisfaction_structure: Optional[Structure] = None,
) -> Iterator[Trigger]:
    """Yield the (active) triggers of *tgd* in *structure*.

    ``satisfaction_structure`` lets the caller check head satisfaction
    against a different (typically larger, evolving) structure than the one
    the body is matched in; this mirrors the paper's chase procedure, where
    body matches range over ``chase_i`` while conditions are re-checked in
    the current, growing ``D``.

    Body matching runs on the planned index-backed evaluator of
    :mod:`repro.query`; the reference chase engine keeps its own full
    per-stage re-matching discipline but shares the per-structure index.
    """
    from ..query.evaluator import iter_homomorphisms

    target_for_heads = satisfaction_structure or structure
    seen: set = set()
    for assignment in iter_homomorphisms(list(tgd.body), structure):
        key = _frontier_key(tgd, assignment)
        if key in seen:
            continue
        seen.add(key)
        if active_only and head_satisfied(tgd, target_for_heads, dict(key)):
            continue
        yield Trigger(tgd, key)


@dataclass(frozen=True)
class FiringOutcome:
    """Everything a chase engine needs to know about one trigger firing.

    ``new_elements`` are the domain elements that *structure* gained from the
    firing — the fresh nulls plus any head constants not previously present —
    computed with O(1) membership checks instead of a full domain rebuild.
    """

    new_atoms: Tuple[Atom, ...]
    fresh_nulls: Tuple[Tuple[object, LabeledNull], ...]
    new_elements: Tuple[object, ...]

    @property
    def fresh(self) -> Dict[object, LabeledNull]:
        """The existential-variable → fresh-null mapping as a dictionary."""
        return dict(self.fresh_nulls)


def apply_trigger(
    trigger: Trigger,
    structure: Structure,
    null_factory: FreshNullFactory,
) -> FiringOutcome:
    """Apply a trigger to *structure* in place, reporting the full outcome.

    This is the paper's ``D := D(T, b̄)`` step: every existential variable of
    the TGD gets a fresh labelled null, and the instantiated head atoms are
    added to *structure*.
    """
    tgd = trigger.tgd
    assignment: Dict[object, object] = dict(trigger.frontier_image)
    fresh: List[Tuple[object, LabeledNull]] = []
    for variable in sorted(tgd.existential_variables(), key=lambda v: v.name):
        null = null_factory.fresh(hint=variable.name)
        fresh.append((variable, null))
        assignment[variable] = null
    new_atoms: List[Atom] = []
    new_elements: List[object] = []
    seen_new: set = set()
    for atom in tgd.head:
        ground = atom.substitute(assignment)
        for arg in ground.args:
            if arg not in seen_new and not structure.has_element(arg):
                seen_new.add(arg)
                new_elements.append(arg)
        if structure.add_atom(ground):
            new_atoms.append(ground)
    return FiringOutcome(
        new_atoms=tuple(new_atoms),
        fresh_nulls=tuple(fresh),
        new_elements=tuple(new_elements),
    )


def fire_trigger(
    trigger: Trigger,
    structure: Structure,
    null_factory: FreshNullFactory,
) -> Tuple[List[Atom], Dict[object, LabeledNull]]:
    """Apply a trigger to *structure* in place (compatibility wrapper).

    Returns the list of atoms that were genuinely new and the mapping of the
    TGD's existential variables to the fresh nulls created for them; see
    :func:`apply_trigger` for the richer outcome record.
    """
    outcome = apply_trigger(trigger, structure, null_factory)
    return list(outcome.new_atoms), outcome.fresh


def all_active_triggers(
    tgds: List[TGD],
    structure: Structure,
    satisfaction_structure: Optional[Structure] = None,
) -> Iterator[Trigger]:
    """Yield the active triggers of every TGD in *tgds*."""
    for tgd in tgds:
        yield from find_triggers(
            tgd,
            structure,
            active_only=True,
            satisfaction_structure=satisfaction_structure,
        )


def is_satisfied(tgd: TGD, structure: Structure) -> bool:
    """``D |= T``: every body match has a matching head witness."""
    return next(find_triggers(tgd, structure, active_only=True), None) is None


def all_satisfied(tgds: List[TGD], structure: Structure) -> bool:
    """``D |= T`` for a set of TGDs."""
    return all(is_satisfied(tgd, structure) for tgd in tgds)


def violated_tgds(tgds: List[TGD], structure: Structure) -> List[TGD]:
    """The subset of *tgds* that have at least one active trigger."""
    return [tgd for tgd in tgds if not is_satisfied(tgd, structure)]
