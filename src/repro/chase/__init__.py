"""Tuple generating dependencies and the lazy chase (Section II.B–C)."""

from .chase import (
    ChaseBudgetExceeded,
    ChaseEngine,
    ChaseResult,
    chase,
    chase_fixpoint,
    chase_i,
    chase_stages,
    iterate_chase,
)
from .provenance import ChaseProvenance, ChaseStep
from .termination import (
    BoundedRunReport,
    DependencyGraph,
    bounded_run_report,
    build_dependency_graph,
    is_weakly_acyclic,
    terminates_within,
)
from .tgd import TGD, TGDError, parse_tgds, rename_tgd_predicates, standardise_apart
from .trigger import (
    Trigger,
    all_active_triggers,
    all_satisfied,
    find_triggers,
    fire_trigger,
    head_satisfied,
    is_satisfied,
    violated_tgds,
)

__all__ = [
    "BoundedRunReport",
    "ChaseBudgetExceeded",
    "ChaseEngine",
    "ChaseProvenance",
    "ChaseResult",
    "ChaseStep",
    "DependencyGraph",
    "TGD",
    "TGDError",
    "Trigger",
    "all_active_triggers",
    "all_satisfied",
    "bounded_run_report",
    "build_dependency_graph",
    "chase",
    "chase_fixpoint",
    "chase_i",
    "chase_stages",
    "find_triggers",
    "fire_trigger",
    "head_satisfied",
    "is_satisfied",
    "is_weakly_acyclic",
    "iterate_chase",
    "parse_tgds",
    "rename_tgd_predicates",
    "standardise_apart",
    "terminates_within",
    "violated_tgds",
]
