"""Swarms: the structures of Abstraction Level 1.

Section VI of the paper: the Level-1 signature has one binary relation
``H(S, _, _)`` for every ideal spider ``S ∈ A``; a structure over this
signature is called a *swarm*.  A swarm edge ``H(S, x, y)`` abstracts a real
spider of species ``S`` with tail ``x`` and antenna ``y`` — the two vertices
of the Level-0 anatomy that are not involved in the ♣ mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..core.atoms import Atom
from ..core.structure import Structure
from ..core.terms import Constant
from ..greengraph.graph import VERTEX_A, VERTEX_B
from ..greengraph.labels import Label
from ..spiders.ideal import (
    FULL_GREEN,
    FULL_RED,
    IdealSpider,
    label_for_spider,
    spider_for_label,
)

SWARM_PREDICATE_PREFIX = "H["
SWARM_PREDICATE_SUFFIX = "]"


def swarm_predicate(species: IdealSpider) -> str:
    """The predicate name realising ``H(S, _, _)``."""
    return f"{SWARM_PREDICATE_PREFIX}{species.key()}{SWARM_PREDICATE_SUFFIX}"


def species_of_predicate(predicate: str) -> Optional[str]:
    """The spider key encoded by a swarm predicate name, or ``None``."""
    if predicate.startswith(SWARM_PREDICATE_PREFIX) and predicate.endswith(
        SWARM_PREDICATE_SUFFIX
    ):
        return predicate[len(SWARM_PREDICATE_PREFIX):-len(SWARM_PREDICATE_SUFFIX)]
    return None


@dataclass(frozen=True, order=True)
class SwarmEdge:
    """A single swarm atom ``H(S, tail, antenna)``."""

    species_key: str
    tail: object
    antenna: object

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.tail} ={self.species_key}=> {self.antenna}"


class Swarm:
    """A swarm: a labelled digraph whose labels are ideal spiders."""

    def __init__(
        self,
        edges: Iterable[Tuple[IdealSpider, object, object]] = (),
        name: str = "",
    ) -> None:
        self.name = name
        self._structure = Structure(name=name or "swarm")
        self._species: Dict[str, IdealSpider] = {}
        self._structure.add_element(VERTEX_A)
        self._structure.add_element(VERTEX_B)
        for species, tail, antenna in edges:
            self.add_edge(species, tail, antenna)

    # ------------------------------------------------------------------
    def add_edge(self, species: IdealSpider, tail: object, antenna: object) -> bool:
        """Add ``H(species, tail, antenna)``; return True when new."""
        self._species[species.key()] = species
        return self._structure.add_fact(swarm_predicate(species), tail, antenna)

    def add_vertex(self, vertex: object) -> bool:
        """Add an isolated vertex."""
        return self._structure.add_element(vertex)

    def has_edge(self, species: IdealSpider, tail: object, antenna: object) -> bool:
        """Is ``H(species, tail, antenna)`` present?"""
        return Atom(swarm_predicate(species), (tail, antenna)) in self._structure

    def edges(self) -> Iterator[SwarmEdge]:
        """All swarm edges."""
        for atom in self._structure.atoms():
            key = species_of_predicate(atom.predicate)
            if key is not None and len(atom.args) == 2:
                yield SwarmEdge(key, atom.args[0], atom.args[1])

    def edges_of_species(self, species: IdealSpider) -> Iterator[SwarmEdge]:
        """All edges labelled with *species*."""
        for atom in self._structure.atoms_with_predicate(swarm_predicate(species)):
            yield SwarmEdge(species.key(), atom.args[0], atom.args[1])

    def species_of(self, key: str) -> Optional[IdealSpider]:
        """The registered ideal spider for a key, if known."""
        return self._species.get(key)

    def species_used(self) -> FrozenSet[str]:
        """Keys of all species occurring on an edge."""
        return frozenset(edge.species_key for edge in self.edges())

    def vertices(self) -> FrozenSet[object]:
        """All vertices."""
        return self._structure.domain()

    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._structure.atoms())

    def __len__(self) -> int:
        return self.edge_count()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "Swarm"
        return f"<{label}: {len(self.vertices())} vertices, {self.edge_count()} edges>"

    # ------------------------------------------------------------------
    def structure(self) -> Structure:
        """The underlying structure (shared, not copied)."""
        return self._structure

    def copy(self, name: str = "") -> "Swarm":
        """A deep copy."""
        clone = Swarm(name=name or self.name)
        clone._structure = self._structure.copy(name=name or self.name)
        clone._species = dict(self._species)
        return clone

    @staticmethod
    def from_structure(
        structure: Structure,
        species: Iterable[IdealSpider] = (),
        name: str = "",
    ) -> "Swarm":
        """Wrap a structure over the swarm signature as a :class:`Swarm`."""
        swarm = Swarm(name=name or structure.name)
        known = {item.key(): item for item in species}
        swarm._species.update(known)
        for element in structure.domain():
            swarm.add_vertex(element)
        for atom in structure.atoms():
            key = species_of_predicate(atom.predicate)
            if key is None:
                raise ValueError(f"atom {atom!r} is not over the swarm signature")
            spider = known.get(key)
            if spider is None:
                spider = _parse_species_key(key)
                swarm._species[key] = spider
            swarm._structure.add_atom(atom)
        return swarm

    # ------------------------------------------------------------------
    # Distinguished contents (Definition 11, Level 1)
    # ------------------------------------------------------------------
    def contains_green_spider(self) -> bool:
        """Does the swarm contain an atom ``H(I, _, _)`` (full green spider)?"""
        return any(True for _ in self.edges_of_species(FULL_GREEN))

    def contains_red_spider(self) -> bool:
        """Does the swarm contain an atom ``H(H, _, _)`` (full red spider)?"""
        return any(True for _ in self.edges_of_species(FULL_RED))


def _parse_species_key(key: str) -> IdealSpider:
    """Reconstruct an :class:`IdealSpider` from its canonical key string."""
    from ..greenred.coloring import Color

    body, rest = key[0], key[1:]
    color = Color.GREEN if body == "I" else Color.RED
    if not rest.startswith("^"):
        raise ValueError(f"cannot parse spider key {key!r}")
    upper_text, lower_text = rest[1:].split("_", 1)
    upper = () if upper_text == "∅" else tuple(upper_text.split(","))
    lower = () if lower_text == "∅" else tuple(lower_text.split(","))
    return IdealSpider(color, upper, lower)


def initial_swarm(name: str = "swarm-DI") -> Swarm:
    """The swarm counterpart of ``DI``: one full-green-spider edge from a to b."""
    swarm = Swarm(name=name)
    swarm.add_edge(FULL_GREEN, VERTEX_A, VERTEX_B)
    return swarm


# ----------------------------------------------------------------------
# Green graphs as swarms (the A2 ↔ S̄ bijection)
# ----------------------------------------------------------------------
def swarm_from_green_graph(graph, name: str = "") -> Swarm:
    """View a green graph as a swarm over the ``A2`` species."""
    swarm = Swarm(name=name or f"swarm({graph.name})")
    for vertex in graph.vertices():
        swarm.add_vertex(vertex)
    for edge in graph.edges():
        label = graph.known_label(edge.label_name) or Label(edge.label_name)
        swarm.add_edge(spider_for_label(label), edge.source, edge.target)
    return swarm


def green_graph_from_swarm(swarm: Swarm, labels: Iterable[Label] = (), name: str = ""):
    """View (the ``A2`` part of) a swarm as a green graph.

    Edges whose species is not in ``A2`` (red spiders, lower spiders) are
    dropped — this is the ``deprecompile`` direction of Definition 35 at the
    structural level.
    """
    from ..greengraph.graph import GreenGraph

    known = {item.name: item for item in labels}
    graph = GreenGraph(name=name or f"green-graph({swarm.name})")
    for vertex in swarm.vertices():
        graph.add_vertex(vertex)
    for edge in swarm.edges():
        species = swarm.species_of(edge.species_key)
        if species is None or not species.is_green or species.lower:
            continue
        label = label_for_spider(species)
        label = known.get(label.name, label)
        graph.add_edge(label, edge.tail, edge.antenna)
    return graph
