"""Minimal models (Definition 31) for swarms and green graphs.

Each rule of ``L1`` / ``L2`` postulates, for two edges satisfying its
left-hand side, the existence of a *pair of witnesses* — two edges satisfying
the right-hand side.  The *important* edges of a model ``M`` containing
``H(I, a, b)`` are defined inductively: the seed edge is important, and
whenever a rule's left-hand side is matched by important edges, the witness
edges found in ``M`` are important.  ``M`` is a *minimal model* when every
edge is important.

Minimal models retain some of the inductive flavour of the chase and are the
technical device behind the proof of Lemma 12(2) (Appendix A of the paper).
This module computes the important-edge fixpoint and extracts minimal
sub-models, generically over any rule object exposing ``tgds()`` with
two-atom bodies and heads (which both :class:`~repro.swarm.rules.SwarmRule`
and :class:`~repro.greengraph.rules.GreenGraphRule` do).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from ..chase.tgd import TGD
from ..core.atoms import Atom
from ..core.structure import Structure
from ..query.evaluator import iter_homomorphisms


def important_atoms(
    structure: Structure,
    tgds: Sequence[TGD],
    seeds: Iterable[Atom],
    max_rounds: int = 1_000,
) -> Set[Atom]:
    """The least fixpoint of the importance operator of Definition 31.

    The witness structure of important atoms is grown *incrementally*: its
    index (maintained through a structure listener by the planned evaluator
    of :mod:`repro.query`) follows every ``add_atom``, so each round matches
    rule bodies against posting lists instead of rebuilding a structure and
    re-materialising candidates.  Newly important atoms become visible to
    the matcher from the next enumeration on, which can only speed up
    convergence — the least fixpoint itself is unchanged (the importance
    operator is monotone).
    """
    important: Set[Atom] = {atom for atom in seeds if atom in structure.atoms()}
    important_structure = Structure(important)
    for element in structure.domain():
        important_structure.add_element(element)
    for _ in range(max_rounds):
        added = False
        for tgd in tgds:
            # The evaluator snapshots the index watermark before yielding,
            # so atoms added below stay invisible to this enumeration —
            # streaming the matches is safe.
            for body_match in iter_homomorphisms(list(tgd.body), important_structure):
                frontier = {
                    var: body_match[var] for var in tgd.frontier() if var in body_match
                }
                for head_match in iter_homomorphisms(
                    list(tgd.head), structure, fix=frontier
                ):
                    for atom in tgd.head:
                        witness = atom.substitute(head_match)
                        if witness not in important:
                            important.add(witness)
                            important_structure.add_atom(witness)
                            added = True
        if not added:
            break
    return important


def minimal_submodel(
    structure: Structure,
    tgds: Sequence[TGD],
    seeds: Iterable[Atom],
) -> Structure:
    """The substructure of *structure* containing only the important atoms.

    When *structure* is a model of the rules, the paper observes that this
    substructure is again a model (one can "just take a substructure
    containing only important edges as a new model").
    """
    atoms = important_atoms(structure, tgds, seeds)
    result = Structure(atoms, name=f"minimal({structure.name})")
    for element in structure.domain():
        if any(element in atom.args for atom in atoms):
            result.add_element(element)
    return result


def is_minimal_model(
    structure: Structure,
    tgds: Sequence[TGD],
    seeds: Iterable[Atom],
) -> bool:
    """Is every atom of *structure* important (Definition 31)?"""
    atoms = important_atoms(structure, tgds, seeds)
    return structure.atoms() <= atoms
