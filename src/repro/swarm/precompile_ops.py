"""Structure-level operations used in the proof of Lemma 12(2).

Appendix A of the paper defines, for a fixed set ``T`` of green graph
rewriting rules, two operations:

* ``deprecompile`` (Definition 35): from a swarm, keep only the edges whose
  species is a *full or upper 1-lame green* spider — i.e. exactly the ``A2``
  species — and read them as a green graph;
* ``precompile`` (Definition 36): from a green graph that is a minimal model
  of ``T``, the swarm ``chase_1(Precompile(T), D)`` — the graph plus all red
  edges demanded, as witnesses, by the Level-1 rules with arguments in ``D``
  (no green edges are added by a single stage).

These are proof devices rather than user-facing API, but having them
executable lets the test suite exercise Lemma 32 on concrete examples.
"""

from __future__ import annotations

from ..greengraph.graph import GreenGraph
from .rules import SwarmRuleSet
from .swarm import Swarm, green_graph_from_swarm, swarm_from_green_graph


def deprecompile_swarm(swarm: Swarm, name: str = "") -> GreenGraph:
    """Definition 35: the green graph of the ``A2`` edges of a swarm."""
    return green_graph_from_swarm(swarm, name=name or f"deprecompile({swarm.name})")


def precompile_structure(
    graph: GreenGraph, level1_rules: SwarmRuleSet, name: str = ""
) -> Swarm:
    """Definition 36: one chase stage of the Level-1 rules over the graph."""
    start = swarm_from_green_graph(graph, name=name or f"precompile({graph.name})")
    outcome = level1_rules.chase(start, max_stages=1, keep_snapshots=False)
    return outcome.swarm()
