"""Swarms: the Abstraction Level 1 language and its translations."""

from .compile import compile_rule, compile_rules, universe_for_rules
from .minimal import important_atoms, is_minimal_model, minimal_submodel
from .precompile_ops import deprecompile_swarm, precompile_structure
from .rules import (
    SwarmChase,
    SwarmRule,
    SwarmRuleKind,
    SwarmRuleSet,
    shared_antenna_rule,
    shared_tail_rule,
)
from .swarm import (
    Swarm,
    SwarmEdge,
    green_graph_from_swarm,
    initial_swarm,
    species_of_predicate,
    swarm_from_green_graph,
    swarm_predicate,
)

__all__ = [
    "Swarm",
    "SwarmChase",
    "SwarmEdge",
    "SwarmRule",
    "SwarmRuleKind",
    "SwarmRuleSet",
    "compile_rule",
    "compile_rules",
    "deprecompile_swarm",
    "green_graph_from_swarm",
    "important_atoms",
    "initial_swarm",
    "is_minimal_model",
    "minimal_submodel",
    "precompile_structure",
    "shared_antenna_rule",
    "shared_tail_rule",
    "species_of_predicate",
    "swarm_from_green_graph",
    "swarm_predicate",
    "universe_for_rules",
]
