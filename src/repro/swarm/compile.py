"""``Compile``: from Level-1 rules to conjunctive queries over Σ (Definition 8).

    Compile(T) = {f & f′ : f &· f′ ∈ T} ∪ {f / f′ : f /· f′ ∈ T}

i.e. "treat each rule from ``T`` as a binary query from ``F2``".  The binary
queries are built over the concrete Level-0 spider anatomy; the leg-index
universe ``S`` is inferred from the rule set (all upper and lower indices it
mentions), which realises the paper's "let s be a natural number, large
enough".
"""

from __future__ import annotations

from typing import Iterable, List

from ..core.query import ConjunctiveQuery
from ..spiders.ideal import SpiderUniverse
from ..spiders.queries import BinaryKind, binary_spider_query
from .rules import SwarmRule, SwarmRuleKind, SwarmRuleSet


def universe_for_rules(rules: Iterable[SwarmRule]) -> SpiderUniverse:
    """The leg-index universe spanned by a set of ``L1`` rules."""
    names: List[str] = []
    for rule in rules:
        for spec in (rule.first, rule.second):
            for name in sorted(spec.upper) + sorted(spec.lower):
                if name not in names:
                    names.append(name)
    return SpiderUniverse(tuple(names))


def compile_rule(
    rule: SwarmRule, universe: SpiderUniverse, name: str = ""
) -> ConjunctiveQuery:
    """The binary query of ``F2`` corresponding to a single ``L1`` rule."""
    kind = (
        BinaryKind.SHARED_ANTENNA
        if rule.kind is SwarmRuleKind.SHARED_ANTENNA
        else BinaryKind.SHARED_TAIL
    )
    return binary_spider_query(
        universe, kind, rule.first, rule.second, name=name or rule.display()
    )


def compile_rules(
    rules: SwarmRuleSet | Iterable[SwarmRule],
    universe: SpiderUniverse | None = None,
) -> List[ConjunctiveQuery]:
    """``Compile(T)`` for a Level-1 rule set."""
    rule_list = list(rules)
    space = universe or universe_for_rules(rule_list)
    return [compile_rule(rule, space) for rule in rule_list]
