"""Setup shim so that legacy editable installs work without the wheel package."""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
